//! Branch-and-bound solver for mixed 0-1 / integer linear programs.
//!
//! The solver explores a binary search tree over the integral variables. At
//! every node it runs bound propagation, computes a dual (lower) bound —
//! either from the LP relaxation, from the objective over the propagated box,
//! or a depth-dependent hybrid of the two — and prunes nodes that cannot beat
//! the incumbent. A greedy propagation-repaired dive supplies an early
//! incumbent, which matters a great deal for the highly constrained BIST
//! assignment models this crate was written for.
//!
//! The search layer on top of that skeleton:
//!
//! * **Warm-started node LPs** — each LP node's optimal [`Basis`] is cached
//!   (bounded to the most recent nodes: the active DFS spine, or the top of
//!   the best-first heap) and children re-solve with the dual simplex from
//!   it instead of running two-phase primal from scratch; chains
//!   re-factorise cold after a bounded number of re-solves.
//! * **Pseudo-cost / reliability branching** ([`BranchRule::PseudoCost`],
//!   the default) with strong-branching initialisation at shallow depth,
//!   learning per-variable dual-bound degradations from every branching.
//! * **Reduced-cost bound fixing** — at LP nodes with an incumbent, duals
//!   prove some integral variables cannot leave their bound in any
//!   improving solution; the tightened bounds feed the propagation
//!   worklist.

use std::collections::BinaryHeap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cuts::{nogood_from_fixings, CutGenerator, CutKind, CutRow};
use crate::error::IlpError;
use crate::heuristics::{greedy_dive, lp_guided_dive, pump_target, rins_dive, round_and_repair};
use crate::model::{CmpOp, Model, Sense};
use crate::propagate::{Domains, PropagationResult, Propagator};
use crate::session::{Budget, CancelToken, SolveEvent};
use crate::simplex::{
    gomory_cuts, instance_fingerprint, resolve_with_basis_priced, solve_lp_basis_priced,
    solve_lp_priced, Basis, LpSolution, LpStatus, Pricing, ReducedCosts,
};
use crate::snapshot::{PseudoSnapshot, RootLpSnapshot, SnapshotNode, SolveSnapshot};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::SparseModel;
use crate::{EPS, INT_EPS};

/// Maximum separation rounds at the root node.
const ROOT_CUT_ROUNDS: usize = 4;
/// Maximum in-tree separation passes (re-checks at improved incumbents).
const TREE_SEPARATIONS: usize = 6;
/// In-tree separation budget for eager (chained warm-started) solves: the
/// anchoring incumbent makes extra shallow rounds pay for themselves.
const TREE_SEPARATIONS_EAGER: usize = 12;
/// Maximum cuts accepted per separation call.
const CUTS_PER_ROUND: usize = 24;
/// Capacity of the node-basis cache. Bases are only kept for the most
/// recently solved LP nodes — with depth-first search that is the active
/// DFS spine (a child is popped right after its parent), with best-first it
/// is the top of the heap. A revised-simplex [`Basis`] is only statuses
/// plus an eta file, so the cap is about keeping lookups cheap, not memory.
const BASIS_CACHE_CAP: usize = 6;
/// Maximum dual-simplex re-solves chained off one cold factorisation
/// before the node re-factorises (cold-solves) to flush the eta file's
/// accumulated rounding error.
const BASIS_MAX_AGE: u32 = 24;
/// Maximum node depth at which uninitialised pseudo-costs are seeded by
/// strong branching (reliability branching); deeper nodes rely on the
/// observations already gathered.
const STRONG_DEPTH: usize = 2;
/// Observation count below which a variable's pseudo-cost is considered
/// unreliable and eligible for strong-branching initialisation.
const RELIABILITY: u32 = 2;
/// Maximum strong-branching candidates probed per node.
const STRONG_CANDIDATES: usize = 6;
/// Pivot budget of each strong-branching child LP.
const STRONG_PIVOTS: u64 = 100;
/// Per-unit degradation recorded when a strong-branching child is
/// infeasible (branching there closes a whole subtree, so prefer it).
const INFEASIBLE_DEGRADATION: f64 = 1e7;
/// Maximum node depth at which in-tree cut rounds may read Gomory cuts off
/// the node's optimal basis (separation at the very top of the tree, where
/// a tightened relaxation still prunes almost everything below).
const TREE_CUT_DEPTH: usize = 2;
/// Nodes a *cold* solve must have explored before in-tree Gomory rounds
/// engage. Easy instances finish well under this and keep their lean trees
/// (extra rows perturb degenerate vertex selection and with it pseudo-cost
/// learning); on hard instances the depth-first search backtracks to the
/// shallow levels long after this point with mature pseudo-costs, and the
/// extra tightening there is what closes the remaining gap. Solves seeded
/// with a warm-start incumbent skip the delay: the incumbent anchors the
/// search, so early tightening only prunes.
const TREE_CUT_MIN_NODES: u64 = 256;
/// Maximum Gomory cuts read off one optimal basis per separation round.
const GOMORY_PER_ROUND: usize = 8;
/// Minimum violation of the separating LP point for a Gomory cut to be
/// installed (the derivation's safety margin already ate ~1e-7 of it).
const GOMORY_MIN_VIOLATION: f64 = 1e-4;
/// Minimum efficacy (violation divided by the cut's coefficient norm —
/// the Euclidean distance from the LP point to the cut hyperplane) for a
/// Gomory cut to be installed. Low-efficacy cuts barely move the
/// relaxation but still perturb degenerate vertex selection, which
/// derails pseudo-cost learning on small instances.
const GOMORY_MIN_EFFICACY: f64 = 1e-2;
/// Longest no-good (term count) worth learning: a conflict touching half
/// the model excludes a vanishing fraction of the search space.
const NOGOOD_MAX_TERMS: usize = 24;
/// Learned no-goods are batched and installed together once this many are
/// pending, so one matrix rebuild (which invalidates every cached basis)
/// amortises over several conflicts.
const NOGOOD_FLUSH: usize = 8;
/// Node-count period of the scheduled heuristic layer; the slot rotation is
/// a pure function of the node counter, so the schedule survives
/// snapshot/resume and engine-vs-rebuild comparisons unchanged.
const HEUR_PERIOD: u64 = 128;

/// One materialised row handed to [`SparseModel::from_rows`].
type DenseRow = (Vec<(usize, f64)>, CmpOp, f64);

/// Folds one LP solve's iteration counters into the run statistics.
fn tally_lp(stats: &mut SolveStats, lp: &LpSolution) {
    stats.lp_pivots += lp.pivots;
    stats.lp_primal_pivots += lp.primal_pivots;
    stats.lp_dual_pivots += lp.dual_pivots;
    stats.devex_pivots += lp.devex_pivots;
    stats.dantzig_pivots += lp.dantzig_pivots;
    stats.bland_pivots += lp.bland_pivots;
    stats.lp_bound_flips += lp.bound_flips;
    stats.lp_basis_refactorizations += lp.refactorizations;
}

/// How dual bounds are computed at branch-and-bound nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMode {
    /// Objective bound over the propagated variable box only. Cheapest, and
    /// surprisingly effective on the assignment-heavy BIST models, but the
    /// weakest bound.
    Propagation,
    /// Solve the LP relaxation at every node. Strongest bound, most work.
    LpRelaxation,
    /// Solve the LP relaxation at nodes of depth `lp_depth` or shallower and
    /// fall back to the propagation bound deeper in the tree.
    Hybrid {
        /// Maximum depth at which the LP relaxation is still solved.
        lp_depth: usize,
    },
}

/// Variable selection strategy for branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchRule {
    /// Branch on the first unfixed integral variable (model order).
    InputOrder,
    /// Branch on the unfixed integral variable that appears in the largest
    /// number of constraints.
    MostConstrained,
    /// Branch on the variable whose LP relaxation value is most fractional;
    /// falls back to [`BranchRule::MostConstrained`] when no LP value is
    /// available at the node.
    MostFractional,
    /// Pseudo-cost (reliability) branching: keep per-variable averages of
    /// the observed dual-bound degradation per unit of fractionality in
    /// each direction, pick the fractional variable maximising the product
    /// of its estimated up/down degradations, and initialise unobserved
    /// variables at shallow depth by *strong branching* (solving both
    /// child LPs warm from the node's basis under a small pivot budget).
    /// Falls back to [`BranchRule::MostConstrained`] when the node has no
    /// LP values (propagation-only bounds).
    PseudoCost,
}

/// Node exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Depth-first (default): finds feasible solutions quickly and keeps the
    /// open-node set small.
    DepthFirst,
    /// Best-bound-first: explores the node with the smallest dual bound
    /// first; proves optimality with fewer nodes at the price of memory.
    BestFirst,
}

/// Configuration of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// The unified solve budget: node limit, wall-clock limit and absolute
    /// deadline (see [`Budget`]). The search stops at whichever expires
    /// first, with [`SolveStats::limit_reached`] set.
    pub budget: Budget,
    /// Optional cancellation flag, checked at every node pop. A cancelled
    /// solve returns [`Status::Interrupted`] with the best incumbent found
    /// so far preserved in the solution values.
    pub cancel: Option<CancelToken>,
    /// Dual bound computation mode.
    pub bound_mode: BoundMode,
    /// Branching variable selection.
    pub branching: BranchRule,
    /// Node exploration order.
    pub search: SearchOrder,
    /// Stop as soon as the relative gap drops below this value.
    pub gap_tolerance: f64,
    /// Pivot budget per LP relaxation solve.
    pub max_lp_pivots: u64,
    /// Simplex pricing rule for every LP solved during the search (node
    /// relaxations, root cut loop, strong branching, heuristic LPs).
    /// Defaults to [`Pricing::Devex`]; [`Pricing::Dantzig`] is kept as the
    /// differential baseline.
    pub pricing: Pricing,
    /// Record a verbatim copy of every emitted cut in
    /// [`SolveStats::emitted_cuts`]. Off by default — it exists for the cut
    /// validity test suite, which re-checks every cut against known integer
    /// optima.
    pub record_cuts: bool,
    /// Run the greedy dive heuristic before the tree search.
    pub dive_heuristic: bool,
    /// Optional warm-start assignment; used as the initial incumbent when it
    /// is feasible for the model.
    pub initial_solution: Option<Vec<f64>>,
    /// Additional warm-start candidates. Every feasible candidate competes
    /// for the initial incumbent and the best one wins; the synthesis engine
    /// uses this to chain the k−1 sweep incumbent alongside the sequential
    /// baseline design.
    pub initial_solutions: Vec<Vec<f64>>,
    /// Run the reducing presolve pipeline ([`crate::reduce`]) and solve the
    /// reduced model instead of the raw one (solutions are lifted back
    /// transparently). On by default.
    pub presolve: bool,
    /// Seed a cut pool with knapsack-cover and clique cuts
    /// ([`crate::cuts`]), separated at the root and re-checked at improved
    /// incumbents. On by default. Has no effect under
    /// [`BoundMode::Propagation`], which never produces the LP points
    /// separation needs.
    pub cuts: bool,
    /// Re-solve child-node LPs with the dual simplex from the parent's
    /// cached optimal [`Basis`] instead of cold two-phase primal. On by
    /// default; node LPs fall back to a cold factorisation whenever the
    /// basis was evicted, aged out, or invalidated by new cutting planes.
    /// Has no effect under [`BoundMode::Propagation`].
    pub lp_warm_start: bool,
    /// Reduced-cost bound fixing: at every LP node with an incumbent, fix
    /// integral variables whose reduced cost proves they cannot move off
    /// their bound in any improving solution, and feed the tightened
    /// bounds to the propagation worklist. On by default. Requires the
    /// warm-capable LP path (`lp_warm_start`) for the reduced costs.
    pub rc_fixing: bool,
    /// Run shallow in-tree Gomory rounds from the first descent instead of
    /// waiting for the node counter to mature. Off by default: early extra
    /// rows perturb degenerate vertex selection and with it pseudo-cost
    /// learning, which blows up the trees of quickly-solved instances. The
    /// synthesis engine enables it for chained sweep solves, where the k−1
    /// incumbent anchors the search and early tightening only prunes.
    pub eager_tree_cuts: bool,
    /// Capture a resumable [`SolveSnapshot`] of the open tree whenever the
    /// search stops early (cancellation, node budget, time budget or
    /// deadline). Off by default: capture clones the open frontier, the
    /// basis cache and the pseudo-cost tables, so plain solves should not
    /// pay for it. When a snapshot was captured it travels on the returned
    /// [`Solution`] (see [`Solution::snapshot`]).
    pub snapshot: bool,
    /// Resume a previous solve from a [`SolveSnapshot`] instead of starting
    /// a fresh tree. The snapshot must belong to the same instance (content
    /// fingerprint over matrix and objective) and use the same
    /// [`SearchOrder`]; mismatches fail loudly with
    /// [`IlpError::Snapshot`]. Root preprocessing (warm candidates, dive,
    /// root cuts) is skipped — the restored state already reflects it.
    pub resume: Option<Arc<SolveSnapshot>>,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            budget: Budget::time(Duration::from_secs(60)),
            cancel: None,
            bound_mode: BoundMode::Hybrid { lp_depth: 4 },
            branching: BranchRule::PseudoCost,
            search: SearchOrder::DepthFirst,
            gap_tolerance: 1e-9,
            max_lp_pivots: 50_000,
            pricing: Pricing::default(),
            record_cuts: false,
            dive_heuristic: true,
            initial_solution: None,
            initial_solutions: Vec::new(),
            presolve: true,
            cuts: true,
            lp_warm_start: true,
            rc_fixing: true,
            eager_tree_cuts: false,
            snapshot: false,
            resume: None,
        }
    }
}

impl SolverConfig {
    /// Starts a typed builder from the default configuration. Presets:
    /// [`SolverConfigBuilder::exact`], [`SolverConfigBuilder::budgeted`],
    /// [`SolverConfigBuilder::prop_only`].
    pub fn builder() -> SolverConfigBuilder {
        SolverConfigBuilder::default()
    }

    /// A configuration tuned for exhaustive solving of small models in tests:
    /// no limits at all, LP relaxation bound everywhere.
    pub fn exact() -> Self {
        Self {
            budget: Budget::unlimited(),
            bound_mode: BoundMode::LpRelaxation,
            ..Self::default()
        }
    }

    /// The default configuration under the given [`Budget`].
    pub fn budgeted(budget: Budget) -> Self {
        Self {
            budget,
            ..Self::default()
        }
    }

    /// A cheap configuration for large models: propagation bounds only and
    /// the given wall-clock budget.
    pub fn time_boxed(limit: Duration) -> Self {
        Self {
            budget: Budget::time(limit),
            bound_mode: BoundMode::Propagation,
            ..Self::default()
        }
    }

    /// Builder-style setter for the whole budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Builder-style installation of a cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Builder-style setter for the time limit.
    #[deprecated(note = "set a `Budget` via `SolverConfig::builder()` or the `budget` field")]
    pub fn with_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.budget.time_limit = limit;
        self
    }

    /// Builder-style setter for the bound mode.
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// Builder-style setter for the branching rule.
    pub fn with_branching(mut self, branching: BranchRule) -> Self {
        self.branching = branching;
        self
    }

    /// Builder-style setter for the simplex pricing rule.
    pub fn with_pricing(mut self, pricing: Pricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Builder-style toggle for recording emitted cuts in the stats.
    pub fn with_record_cuts(mut self, enabled: bool) -> Self {
        self.record_cuts = enabled;
        self
    }

    /// Builder-style toggle for dual-simplex warm starts of node LPs.
    pub fn with_lp_warm_start(mut self, enabled: bool) -> Self {
        self.lp_warm_start = enabled;
        self
    }

    /// Builder-style toggle for reduced-cost bound fixing.
    pub fn with_rc_fixing(mut self, enabled: bool) -> Self {
        self.rc_fixing = enabled;
        self
    }

    /// Builder-style setter for the search order.
    pub fn with_search(mut self, search: SearchOrder) -> Self {
        self.search = search;
        self
    }

    /// Builder-style setter for a warm-start assignment.
    pub fn with_initial_solution(mut self, values: Vec<f64>) -> Self {
        self.initial_solution = Some(values);
        self
    }

    /// Builder-style addition of a warm-start candidate (see
    /// [`SolverConfig::initial_solutions`]).
    pub fn with_warm_candidate(mut self, values: Vec<f64>) -> Self {
        self.initial_solutions.push(values);
        self
    }

    /// Builder-style toggle for the reducing presolve.
    pub fn with_presolve(mut self, enabled: bool) -> Self {
        self.presolve = enabled;
        self
    }

    /// Builder-style toggle for the cut pool.
    pub fn with_cuts(mut self, enabled: bool) -> Self {
        self.cuts = enabled;
        self
    }

    /// Builder-style toggle for snapshot capture on early stop.
    pub fn with_snapshot(mut self, enabled: bool) -> Self {
        self.snapshot = enabled;
        self
    }

    /// Builder-style installation of a snapshot to resume from.
    pub fn with_resume(mut self, snapshot: Arc<SolveSnapshot>) -> Self {
        self.resume = Some(snapshot);
        self
    }
}

/// Typed builder for [`SolverConfig`], with presets for the three common
/// shapes of a solve. Obtained from [`SolverConfig::builder`] or one of the
/// preset constructors.
///
/// ```
/// use std::time::Duration;
/// use bist_ilp::{Budget, SearchOrder, SolverConfig, SolverConfigBuilder};
///
/// // A deterministic, node-limited best-first search with a 10 s cap.
/// let config = SolverConfig::builder()
///     .budget(Budget::nodes(500).with_time(Duration::from_secs(10)))
///     .search(SearchOrder::BestFirst)
///     .build();
/// assert_eq!(config.budget.node_limit, Some(500));
///
/// // Presets: exhaustive, budgeted, and LP-free propagation-only solving.
/// let exact = SolverConfigBuilder::exact().build();
/// assert!(exact.budget.is_unlimited());
/// let prop = SolverConfigBuilder::prop_only().build();
/// assert!(!prop.cuts);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SolverConfigBuilder {
    config: SolverConfig,
}

impl SolverConfigBuilder {
    /// Preset: exhaustive solving (no limits, LP bounds everywhere), as
    /// [`SolverConfig::exact`].
    pub fn exact() -> Self {
        Self {
            config: SolverConfig::exact(),
        }
    }

    /// Preset: the default configuration under `budget`.
    pub fn budgeted(budget: Budget) -> Self {
        Self {
            config: SolverConfig::budgeted(budget),
        }
    }

    /// Preset: propagation-only bounding — no LP relaxations anywhere, so
    /// the LP-dependent layers (cut pool, warm starts, reduced-cost fixing)
    /// are switched off rather than left as inert flags.
    pub fn prop_only() -> Self {
        let config = SolverConfig {
            bound_mode: BoundMode::Propagation,
            cuts: false,
            lp_warm_start: false,
            rc_fixing: false,
            ..SolverConfig::default()
        };
        Self { config }
    }

    /// Sets the solve budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.config.budget = budget;
        self
    }

    /// Installs a cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.config.cancel = Some(token);
        self
    }

    /// Sets the dual bound mode.
    pub fn bound_mode(mut self, mode: BoundMode) -> Self {
        self.config.bound_mode = mode;
        self
    }

    /// Sets the branching rule.
    pub fn branch_rule(mut self, rule: BranchRule) -> Self {
        self.config.branching = rule;
        self
    }

    /// Sets the node exploration order.
    pub fn search(mut self, order: SearchOrder) -> Self {
        self.config.search = order;
        self
    }

    /// Sets the relative gap tolerance.
    pub fn gap_tolerance(mut self, tolerance: f64) -> Self {
        self.config.gap_tolerance = tolerance;
        self
    }

    /// Sets the pivot budget per LP solve.
    pub fn max_lp_pivots(mut self, pivots: u64) -> Self {
        self.config.max_lp_pivots = pivots;
        self
    }

    /// Sets the simplex pricing rule.
    pub fn pricing(mut self, pricing: Pricing) -> Self {
        self.config.pricing = pricing;
        self
    }

    /// Toggles recording emitted cuts in the stats.
    pub fn record_cuts(mut self, enabled: bool) -> Self {
        self.config.record_cuts = enabled;
        self
    }

    /// Toggles the greedy dive heuristic.
    pub fn dive_heuristic(mut self, enabled: bool) -> Self {
        self.config.dive_heuristic = enabled;
        self
    }

    /// Adds a warm-start candidate (may be called repeatedly).
    pub fn warm_start(mut self, values: Vec<f64>) -> Self {
        self.config.initial_solutions.push(values);
        self
    }

    /// Toggles the reducing presolve.
    pub fn presolve(mut self, enabled: bool) -> Self {
        self.config.presolve = enabled;
        self
    }

    /// Toggles the cut pool.
    pub fn cuts(mut self, enabled: bool) -> Self {
        self.config.cuts = enabled;
        self
    }

    /// Toggles dual-simplex warm starts of node LPs.
    pub fn lp_warm_start(mut self, enabled: bool) -> Self {
        self.config.lp_warm_start = enabled;
        self
    }

    /// Toggles reduced-cost bound fixing.
    pub fn rc_fixing(mut self, enabled: bool) -> Self {
        self.config.rc_fixing = enabled;
        self
    }

    /// Toggles eager shallow Gomory rounds (see
    /// [`SolverConfig::eager_tree_cuts`]).
    pub fn eager_tree_cuts(mut self, enabled: bool) -> Self {
        self.config.eager_tree_cuts = enabled;
        self
    }

    /// Toggles snapshot capture on early stop.
    pub fn snapshot(mut self, enabled: bool) -> Self {
        self.config.snapshot = enabled;
        self
    }

    /// Installs a snapshot to resume from.
    pub fn resume(mut self, snapshot: Arc<SolveSnapshot>) -> Self {
        self.config.resume = Some(snapshot);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> SolverConfig {
        self.config
    }
}

/// A branch-and-bound node.
#[derive(Debug, Clone)]
struct Node {
    domains: Domains,
    depth: usize,
    /// Dual bound inherited from the parent (minimisation objective).
    bound: f64,
    /// The variable whose bounds were tightened to create this node. The
    /// parent's domains were at a propagation fixpoint, so the child's
    /// propagation can be seeded with just this variable's rows.
    branched: Option<usize>,
    /// Cache key of the parent's optimal LP basis, if it was stored; the
    /// child's LP re-solves from it with the dual simplex on a cache hit.
    parent_basis: Option<u64>,
    /// Whether the inherited `bound` came from an LP relaxation (pseudo-cost
    /// updates only compare LP bounds with LP bounds).
    parent_bound_is_lp: bool,
    /// Whether this child tightened the branched variable upward.
    branch_up: bool,
    /// Distance the branch moved the parent's LP value of the branched
    /// variable (the pseudo-cost normalisation denominator); 0 when the
    /// parent had no LP value.
    branch_step: f64,
    /// Whether the node's whole decision path consists of binary fixings
    /// and carries no incumbent-dependent (reduced-cost) tightenings. Only
    /// such nodes may learn a no-good when refuted by infeasibility: their
    /// box is exactly the propagation closure of the recorded fixings, so
    /// the conflict is valid for the whole tree.
    nogood_ok: bool,
}

/// Wrapper giving the binary heap min-heap semantics on the node bound.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smaller bound = higher priority.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

enum Frontier {
    Stack(Vec<Node>),
    Heap(BinaryHeap<HeapNode>),
}

impl Frontier {
    fn new(order: SearchOrder) -> Self {
        match order {
            SearchOrder::DepthFirst => Frontier::Stack(Vec::new()),
            SearchOrder::BestFirst => Frontier::Heap(BinaryHeap::new()),
        }
    }
    fn push(&mut self, node: Node) {
        match self {
            Frontier::Stack(s) => s.push(node),
            Frontier::Heap(h) => h.push(HeapNode(node)),
        }
    }
    fn pop(&mut self) -> Option<Node> {
        match self {
            Frontier::Stack(s) => s.pop(),
            Frontier::Heap(h) => h.pop().map(|n| n.0),
        }
    }
    fn min_bound(&self) -> Option<f64> {
        match self {
            Frontier::Stack(s) => s
                .iter()
                .map(|n| n.bound)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
            Frontier::Heap(h) => h.peek().map(|n| n.0.bound),
        }
    }
    fn is_empty(&self) -> bool {
        match self {
            Frontier::Stack(s) => s.is_empty(),
            Frontier::Heap(h) => h.is_empty(),
        }
    }
    /// Drains the frontier into a vector whose *last* element is the node
    /// `pop` would have returned next, so pushing the elements back in order
    /// reconstructs an equivalent frontier. A stack drains verbatim; a heap
    /// drains in descending-bound order (ties in heap-internal order, which
    /// a rebuilt heap is free to permute — see [`crate::snapshot`]).
    fn into_nodes(self) -> Vec<Node> {
        match self {
            Frontier::Stack(s) => s,
            Frontier::Heap(h) => h.into_sorted_vec().into_iter().map(|n| n.0).collect(),
        }
    }
}

/// Serializes an open node as bound deltas against the model's root box.
/// Bit-pattern comparison (not `==`) so a signed-zero tightening still
/// round-trips exactly.
fn snapshot_node(node: &Node, base: &Domains) -> SnapshotNode {
    let deltas = (0..base.len())
        .filter_map(|j| {
            let (lo, hi) = (node.domains.lower(j), node.domains.upper(j));
            (lo.to_bits() != base.lower(j).to_bits() || hi.to_bits() != base.upper(j).to_bits())
                .then_some((j, lo, hi))
        })
        .collect();
    SnapshotNode {
        deltas,
        depth: node.depth,
        bound: node.bound,
        branched: node.branched,
        parent_basis: node.parent_basis,
        parent_bound_is_lp: node.parent_bound_is_lp,
        branch_up: node.branch_up,
        branch_step: node.branch_step,
        nogood_ok: node.nogood_ok,
    }
}

/// Rebuilds an open node from its serialized bound deltas. Bounds are
/// restored verbatim (no re-tightening), so the resumed node's domains are
/// bit-identical to the captured ones.
fn restore_node(snap: &SnapshotNode, base: &Domains) -> Node {
    let mut domains = base.clone();
    for &(j, lo, hi) in &snap.deltas {
        domains.restore_bounds(j, lo, hi);
    }
    Node {
        domains,
        depth: snap.depth,
        bound: snap.bound,
        branched: snap.branched,
        parent_basis: snap.parent_basis,
        parent_bound_is_lp: snap.parent_bound_is_lp,
        branch_up: snap.branch_up,
        branch_step: snap.branch_step,
        nogood_ok: snap.nogood_ok,
    }
}

/// Per-variable pseudo-cost accumulators: average observed dual-bound
/// degradation per unit of fractionality, per branching direction. Fed by
/// real branchings and by strong-branching probes; consulted by
/// [`BranchRule::PseudoCost`].
#[derive(Debug, Default)]
struct PseudoCosts {
    up_sum: Vec<f64>,
    up_cnt: Vec<u32>,
    down_sum: Vec<f64>,
    down_cnt: Vec<u32>,
    /// Running direction-wide totals (`[down, up]`), so the global-average
    /// fallback of [`PseudoCosts::estimate`] is O(1) instead of a scan over
    /// every variable.
    global_sum: [f64; 2],
    global_cnt: [u32; 2],
}

impl PseudoCosts {
    fn new(num_vars: usize) -> Self {
        Self {
            up_sum: vec![0.0; num_vars],
            up_cnt: vec![0; num_vars],
            down_sum: vec![0.0; num_vars],
            down_cnt: vec![0; num_vars],
            global_sum: [0.0; 2],
            global_cnt: [0; 2],
        }
    }

    fn record(&mut self, j: usize, up: bool, degradation_per_unit: f64) {
        if up {
            self.up_sum[j] += degradation_per_unit;
            self.up_cnt[j] += 1;
        } else {
            self.down_sum[j] += degradation_per_unit;
            self.down_cnt[j] += 1;
        }
        self.global_sum[usize::from(up)] += degradation_per_unit;
        self.global_cnt[usize::from(up)] += 1;
    }

    fn observations(&self, j: usize) -> u32 {
        self.up_cnt[j] + self.down_cnt[j]
    }

    /// Estimated per-unit degradation in one direction: the variable's own
    /// average when observed, the direction's global average otherwise, and
    /// a neutral 1.0 before any observation exists at all.
    fn estimate(&self, j: usize, up: bool) -> f64 {
        let (sum, cnt) = if up {
            (&self.up_sum, &self.up_cnt)
        } else {
            (&self.down_sum, &self.down_cnt)
        };
        if cnt[j] > 0 {
            return sum[j] / f64::from(cnt[j]);
        }
        let total = self.global_cnt[usize::from(up)];
        if total > 0 {
            self.global_sum[usize::from(up)] / f64::from(total)
        } else {
            1.0
        }
    }

    fn to_snapshot(&self) -> PseudoSnapshot {
        PseudoSnapshot {
            up_sum: self.up_sum.clone(),
            up_cnt: self.up_cnt.clone(),
            down_sum: self.down_sum.clone(),
            down_cnt: self.down_cnt.clone(),
            global_sum: self.global_sum,
            global_cnt: self.global_cnt,
        }
    }

    fn from_snapshot(snap: &PseudoSnapshot) -> Self {
        Self {
            up_sum: snap.up_sum.clone(),
            up_cnt: snap.up_cnt.clone(),
            down_sum: snap.down_sum.clone(),
            down_cnt: snap.down_cnt.clone(),
            global_sum: snap.global_sum,
            global_cnt: snap.global_cnt,
        }
    }
}

/// The root relaxation the cut loop already solved for the current row set,
/// handed to the root node so the most expensive LP of the tree is not
/// repeated.
struct CachedRootLp {
    objective: f64,
    values: Vec<f64>,
    reduced_costs: Option<ReducedCosts>,
    pivots: u64,
}

/// The branch-and-bound engine. Construct with [`BranchAndBound::new`] and
/// call [`BranchAndBound::run`]; most users go through [`Model::solve`].
pub struct BranchAndBound<'a> {
    model: &'a Model,
    config: SolverConfig,
    propagator: Propagator,
    /// Minimisation objective coefficients (sign-flipped for maximisation).
    objective: Vec<f64>,
    objective_constant: f64,
    sense_factor: f64,
    occurrence: Vec<usize>,
    /// Cut pool: the generator mines the model once, `cut_rows` holds every
    /// accepted cut. The rows live in the shared sparse matrix, so the
    /// propagator, the simplex and the branching rules consume them exactly
    /// like model rows.
    cut_source: Option<CutGenerator>,
    cut_rows: Vec<CutRow>,
    /// Learned no-good cuts awaiting their batched install (see
    /// [`NOGOOD_FLUSH`]); already registered in the generator's dedup pool,
    /// and serialized with snapshots so a resume flushes the same batch.
    pending_cuts: Vec<CutRow>,
    /// Remaining in-tree separation passes (re-checks at improved
    /// incumbents and Gomory rounds at shallow nodes).
    tree_separations_left: usize,
    /// Whether shallow Gomory rounds run from the first descent:
    /// [`SolverConfig::eager_tree_cuts`] was requested *and* a warm-start
    /// candidate actually established the incumbent before the tree opened.
    /// Cold or unseeded solves defer the rounds until the node counter
    /// passes [`TREE_CUT_MIN_NODES`], protecting the quick ones. Serialized
    /// with snapshots so a resume separates on the same schedule.
    eager_separation: bool,
    /// The model's root box *before* propagation: the global bounds every
    /// Gomory cut is unshifted to, so cuts derived at tree nodes stay valid
    /// for the whole tree and for the shared pool.
    root_box: Domains,
    /// Per-variable integrality of the root box (Gomory candidate mask).
    integral_mask: Vec<bool>,
    /// Whether the internal objective can only take integer values (every
    /// nonzero coefficient is an integer on an integral variable, and the
    /// constant is an integer). When true, every dual bound rounds up to
    /// the next integer — the classic integral-objective strengthening,
    /// and on the paper's transistor-count objectives the step that turns
    /// a 0.4-area LP gap into a closed node.
    integral_objective: bool,
    /// Variables that are binary in the root box (integral with bounds
    /// {0, 1}) — the only fixings a learned no-good may mention.
    binary_mask: Vec<bool>,
    /// The last root LP solved by the cut loop, valid for the *current*
    /// matrix; the root node consumes it instead of re-solving the most
    /// expensive LP of the tree.
    root_lp_cache: Option<CachedRootLp>,
    /// Basis stored by the root cut loop for the root node to hand to its
    /// children.
    root_basis_key: Option<u64>,
    /// Recently stored node bases (statuses + eta files), oldest first;
    /// capacity-bounded to keep lookups cheap. Cleared whenever the cut
    /// pool rebuilds the matrix (a basis is only valid for the exact row
    /// set it was factorized from, and the fingerprint check would reject
    /// stale entries anyway).
    basis_cache: Vec<(u64, Rc<Basis>)>,
    next_basis_key: u64,
    /// Pseudo-cost state of the branching rule.
    pseudo: PseudoCosts,
    /// Live event sink (see [`SolveEvent`]); `None` when nobody listens.
    events: Option<&'a mut dyn FnMut(&SolveEvent)>,
    /// Largest internal (minimisation-sense) dual bound already streamed as
    /// a [`SolveEvent::BoundImproved`], so the event keeps its "the bound
    /// tightened" contract across non-improving cut-round re-solves.
    last_bound_emitted: f64,
    /// Content fingerprint of the *pre-cut* instance (model matrix +
    /// internal objective): the identity a [`SolveSnapshot`] records and
    /// the resume path checks. Cut rows are excluded on purpose — they are
    /// part of the serialized state, not of the instance.
    base_fingerprint: u64,
}

impl<'a> BranchAndBound<'a> {
    /// Prepares a solver run for `model`.
    pub fn new(model: &'a Model, config: SolverConfig) -> Self {
        let propagator = Propagator::new(model);
        let sense_factor = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let objective: Vec<f64> = model
            .vars()
            .iter()
            .map(|v| sense_factor * v.objective)
            .collect();
        let objective_constant = sense_factor * model.objective().offset();
        let occurrence: Vec<usize> = (0..model.num_vars())
            .map(|j| propagator.matrix().occurrences(j))
            .collect();
        // The generator is kept even without mined knapsack/clique sources:
        // it owns the dedup pool that Gomory and no-good emission go
        // through, and the paper circuits are exactly the models where the
        // mined separators never fire but the basis-derived cuts do.
        let cut_source =
            (config.cuts && model.num_integral() > 0).then(|| CutGenerator::new(model));
        let num_vars = model.num_vars();
        let root_box = Domains::from_model(model);
        let integral_mask: Vec<bool> = (0..num_vars).map(|j| root_box.is_integral(j)).collect();
        let binary_mask: Vec<bool> = (0..num_vars)
            .map(|j| {
                root_box.is_integral(j) && root_box.lower(j) == 0.0 && root_box.upper(j) == 1.0
            })
            .collect();
        let integral_objective = objective_constant.fract() == 0.0
            && objective
                .iter()
                .enumerate()
                .all(|(j, &c)| c == 0.0 || (c.fract() == 0.0 && integral_mask[j]));
        let base_fingerprint =
            instance_fingerprint(propagator.matrix(), &objective, objective_constant);
        Self {
            model,
            config,
            propagator,
            objective,
            objective_constant,
            sense_factor,
            occurrence,
            cut_source,
            cut_rows: Vec::new(),
            pending_cuts: Vec::new(),
            tree_separations_left: TREE_SEPARATIONS,
            eager_separation: false,
            root_box,
            integral_mask,
            integral_objective,
            binary_mask,
            root_lp_cache: None,
            root_basis_key: None,
            basis_cache: Vec::new(),
            next_basis_key: 0,
            pseudo: PseudoCosts::new(num_vars),
            events: None,
            last_bound_emitted: f64::NEG_INFINITY,
            base_fingerprint,
        }
    }

    /// Streams [`SolveEvent`]s into `sink` during the run. Most callers
    /// attach observers through [`crate::SolveSession`] instead.
    pub fn with_event_sink(mut self, sink: &'a mut dyn FnMut(&SolveEvent)) -> Self {
        self.events = Some(sink);
        self
    }

    /// Invokes the event sink, if any.
    fn emit(&mut self, event: SolveEvent) {
        if let Some(sink) = self.events.as_mut() {
            sink(&event);
        }
    }

    /// Streams a [`SolveEvent::BoundImproved`] only when `internal_bound`
    /// strictly tightens the last streamed bound.
    fn emit_bound_improved(&mut self, nodes: u64, internal_bound: f64) {
        if self.events.is_some() && internal_bound > self.last_bound_emitted + EPS {
            self.last_bound_emitted = internal_bound;
            self.emit(SolveEvent::BoundImproved {
                nodes,
                bound: self.sense_factor * internal_bound,
            });
        }
    }

    /// Whether the installed cancellation token has been raised.
    fn is_cancelled(&self) -> bool {
        self.config
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
    }

    /// Looks up a stored basis by its cache key.
    fn cached_basis(&self, key: u64) -> Option<Rc<Basis>> {
        self.basis_cache
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, basis)| Rc::clone(basis))
    }

    /// Stores a basis, evicting the oldest entry once at capacity, and
    /// returns its cache key.
    fn store_basis(&mut self, basis: Basis) -> u64 {
        let key = self.next_basis_key;
        self.next_basis_key += 1;
        if self.basis_cache.len() >= BASIS_CACHE_CAP {
            self.basis_cache.remove(0);
        }
        self.basis_cache.push((key, Rc::new(basis)));
        key
    }

    /// Rebuilds the shared sparse matrix from the model rows plus every
    /// accepted cut, and refreshes the occurrence counts the branching rules
    /// read. Called whenever the cut pool grows.
    fn rebuild_matrix(&mut self) {
        let rows: Vec<DenseRow> = self
            .model
            .constraints()
            .iter()
            .map(|c| {
                (
                    c.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                    c.op,
                    c.rhs,
                )
            })
            .chain(
                self.cut_rows
                    .iter()
                    .map(|cut| (cut.terms.clone(), CmpOp::Le, cut.rhs)),
            )
            .collect();
        self.propagator =
            Propagator::from_matrix(SparseModel::from_rows(self.model.num_vars(), rows));
        for (j, slot) in self.occurrence.iter_mut().enumerate() {
            *slot = self.propagator.matrix().occurrences(j);
        }
        // Every stored basis was factorised from the old row set; nodes
        // still pointing at one will miss and re-factorise cold.
        self.basis_cache.clear();
        self.root_basis_key = None;
    }

    /// Separates cuts violated by `lp_values`, installs them in the row set
    /// and re-propagates `domains`. Returns `false` when the tightened row
    /// set proves the box empty.
    fn install_cuts(
        &mut self,
        lp_values: &[f64],
        domains: &mut Domains,
        stats: &mut SolveStats,
    ) -> Option<bool> {
        let generator = self.cut_source.as_mut()?;
        let new_cuts = generator.separate(lp_values, CUTS_PER_ROUND);
        if new_cuts.is_empty() {
            return None;
        }
        for cut in &new_cuts {
            stats.cuts_emitted.bump(cut.kind);
            if self.config.record_cuts {
                stats.emitted_cuts.push(cut.clone());
            }
        }
        stats.cuts += new_cuts.len() as u64;
        self.emit(SolveEvent::CutRound {
            nodes: stats.nodes,
            added: new_cuts.len() as u64,
            total: stats.cuts,
        });
        self.cut_rows.extend(new_cuts);
        self.rebuild_matrix();
        stats.propagations += 1;
        Some(self.propagator.propagate(domains) != PropagationResult::Infeasible)
    }

    /// Reads Gomory mixed-integer cuts off the fractional rows of `basis`,
    /// installs the ones the LP point violates and re-propagates `domains`.
    /// Cuts are unshifted to the *root* box (not the node's), so they are
    /// valid for the whole tree even when derived at a branched node.
    /// Returns `None` when nothing was installed, `Some(feasible)`
    /// otherwise, mirroring [`BranchAndBound::install_cuts`].
    fn install_gomory(
        &mut self,
        basis: &Basis,
        lp_values: &[f64],
        domains: &mut Domains,
        stats: &mut SolveStats,
    ) -> Option<bool> {
        self.cut_source.as_ref()?;
        let candidates = gomory_cuts(
            self.propagator.matrix(),
            &self.objective,
            self.objective_constant,
            basis,
            domains,
            &self.root_box,
            &self.integral_mask,
            GOMORY_PER_ROUND,
        );
        let mut accepted = Vec::new();
        for (terms, rhs) in candidates {
            let activity: f64 = terms.iter().map(|&(j, a)| a * lp_values[j]).sum();
            if activity <= rhs + GOMORY_MIN_VIOLATION {
                continue;
            }
            let norm = terms
                .iter()
                .map(|&(_, a)| a * a)
                .sum::<f64>()
                .sqrt()
                .max(1e-12);
            if (activity - rhs) / norm < GOMORY_MIN_EFFICACY {
                continue;
            }
            let cut = CutRow {
                terms,
                rhs,
                kind: CutKind::Gomory,
            };
            if self.cut_source.as_mut().is_some_and(|g| g.admit(&cut)) {
                stats.cuts_emitted.bump(CutKind::Gomory);
                if self.config.record_cuts {
                    stats.emitted_cuts.push(cut.clone());
                }
                accepted.push(cut);
            }
        }
        if accepted.is_empty() {
            return None;
        }
        stats.cuts += accepted.len() as u64;
        self.emit(SolveEvent::CutRound {
            nodes: stats.nodes,
            added: accepted.len() as u64,
            total: stats.cuts,
        });
        self.cut_rows.extend(accepted);
        self.rebuild_matrix();
        stats.propagations += 1;
        Some(self.propagator.propagate(domains) != PropagationResult::Infeasible)
    }

    /// Learns a conflict no-good from an infeasibility-refuted node: the
    /// binary fixings that led here can never all hold together in a
    /// feasible assignment, so `Σ₁ x − Σ₀ x ≤ |ones| − 1` is valid
    /// globally. Only [`Node::nogood_ok`] nodes are eligible — a path
    /// containing interval branchings or reduced-cost tightenings proves
    /// something weaker ("no *improving* solution here"), and a cut from it
    /// could slice off the optimum. Bound-pruned subtrees are never
    /// learned from for the same reason.
    fn learn_nogood(&mut self, node: &Node, stats: &mut SolveStats) {
        if !node.nogood_ok || node.depth == 0 || self.cut_source.is_none() {
            return;
        }
        let mut ones = Vec::new();
        let mut zeros = Vec::new();
        for j in 0..node.domains.len() {
            if !self.binary_mask[j] || !node.domains.is_fixed(j) {
                continue;
            }
            if node.domains.lower(j) > 0.5 {
                ones.push(j);
            } else {
                zeros.push(j);
            }
        }
        let terms = ones.len() + zeros.len();
        if terms == 0 || terms > NOGOOD_MAX_TERMS {
            return;
        }
        let cut = nogood_from_fixings(&ones, &zeros);
        if self.cut_source.as_mut().is_some_and(|g| g.admit(&cut)) {
            stats.cuts_emitted.bump(CutKind::NoGood);
            if self.config.record_cuts {
                stats.emitted_cuts.push(cut.clone());
            }
            self.pending_cuts.push(cut);
        }
    }

    /// Installs the batched no-goods into the shared row set (one matrix
    /// rebuild for the whole batch).
    fn flush_pending_cuts(&mut self, stats: &mut SolveStats) {
        if self.pending_cuts.is_empty() {
            return;
        }
        let added = self.pending_cuts.len() as u64;
        stats.cuts += added;
        self.emit(SolveEvent::CutRound {
            nodes: stats.nodes,
            added,
            total: stats.cuts,
        });
        let pending = std::mem::take(&mut self.pending_cuts);
        self.cut_rows.extend(pending);
        self.rebuild_matrix();
    }

    /// Root cut loop: solve the root LP, separate violated covers/cliques,
    /// tighten and repeat. Returns `false` when the root becomes infeasible
    /// (only possible numerically, since cuts preserve every integer point).
    fn root_cuts(
        &mut self,
        domains: &mut Domains,
        stats: &mut SolveStats,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        start: Instant,
    ) -> bool {
        for _ in 0..ROOT_CUT_ROUNDS {
            // Separation is best-effort root tightening: stop the loop (but
            // not the solve) as soon as the budget or a cancellation makes
            // further rounds pointless.
            if self.is_cancelled() || self.config.budget.time_expired(start) {
                return true;
            }
            let (lp, basis) = if self.config.lp_warm_start {
                solve_lp_basis_priced(
                    self.propagator.matrix(),
                    &self.objective,
                    self.objective_constant,
                    domains,
                    self.config.max_lp_pivots,
                    self.config.pricing,
                )
            } else {
                (
                    solve_lp_priced(
                        self.propagator.matrix(),
                        &self.objective,
                        self.objective_constant,
                        domains,
                        self.config.max_lp_pivots,
                        self.config.pricing,
                    ),
                    None,
                )
            };
            stats.lp_solves += 1;
            tally_lp(stats, &lp);
            match lp.status {
                LpStatus::Infeasible => return false,
                // Each cut round re-solves the root relaxation over a
                // tighter row set; stream the optimum whenever it actually
                // tightened the dual bound.
                LpStatus::Optimal => self.emit_bound_improved(stats.nodes, lp.objective),
                LpStatus::Unbounded | LpStatus::IterationLimit => return true,
            }
            // An integral root relaxation is a solved instance: log it as an
            // incumbent improvement and stop separating.
            if self.try_integral_incumbent(&lp.values, domains, incumbent, stats, start) {
                self.cache_root_lp(lp, basis);
                return true;
            }
            match self.install_cuts(&lp.values, domains, stats) {
                None => {
                    // The mined cover/clique pool is dry; read Gomory cuts
                    // off the optimal basis instead. The paper circuits'
                    // root LPs violate no mined cut at all, so this is
                    // where their root tightening actually happens.
                    if let Some(b) = basis.as_ref() {
                        match self.install_gomory(b, &lp.values, domains, stats) {
                            Some(true) => continue,
                            Some(false) => return false,
                            None => {}
                        }
                    }
                    // No violated cuts: this LP is valid for the final row
                    // set, so hand it to the root node instead of having it
                    // re-solve the identical relaxation.
                    self.cache_root_lp(lp, basis);
                    return true;
                }
                Some(true) => {}
                Some(false) => return false,
            }
        }
        true
    }

    /// Records the cut loop's final LP (and its basis, when available) for
    /// the root node to consume.
    fn cache_root_lp(&mut self, lp: crate::simplex::LpSolution, basis: Option<Basis>) {
        self.root_lp_cache = Some(CachedRootLp {
            objective: lp.objective,
            values: lp.values,
            reduced_costs: lp.reduced_costs,
            pivots: lp.pivots,
        });
        self.root_basis_key = basis.map(|b| self.store_basis(b));
    }

    /// If `values` is integral over the box, round it, check feasibility and
    /// update the incumbent. Returns whether the point was integral.
    fn try_integral_incumbent(
        &mut self,
        lp_values: &[f64],
        domains: &Domains,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        stats: &mut SolveStats,
        start: Instant,
    ) -> bool {
        let integral = (0..domains.len()).all(|j| {
            !domains.is_integral(j) || (lp_values[j] - lp_values[j].round()).abs() <= INT_EPS
        });
        if !integral {
            return false;
        }
        let mut values = lp_values.to_vec();
        for (j, v) in values.iter_mut().enumerate() {
            if domains.is_integral(j) {
                *v = v.round();
            }
        }
        if self.model.is_feasible(&values, 1e-6) {
            let obj = self.internal_objective(&values);
            if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                *incumbent = Some((obj, values));
                self.record_improvement(stats, start, obj, "root-lp");
            }
        }
        true
    }

    /// Runs the search and returns the best solution found.
    ///
    /// # Errors
    ///
    /// Only structural errors are reported as `Err`; infeasibility and limit
    /// expiry are encoded in the returned [`Status`].
    pub fn run(mut self) -> Result<Solution, IlpError> {
        let start = Instant::now();
        let mut stats = SolveStats::default();

        if let Some(snapshot) = self.config.resume.take() {
            return self.run_resumed(&snapshot, start, stats);
        }

        let mut root = Domains::from_model(self.model);
        stats.propagations += 1;
        if self.propagator.propagate(&mut root) == PropagationResult::Infeasible {
            stats.time = start.elapsed();
            stats.best_bound = f64::INFINITY;
            return Ok(Solution::without_values(Status::Infeasible, stats));
        }

        // Incumbent: (internal minimisation objective, values). All supplied
        // warm-start candidates compete; the cheapest feasible one wins.
        let mut incumbent: Option<(f64, Vec<f64>)> = None;

        let warm_candidates: Vec<Vec<f64>> = self
            .config
            .initial_solution
            .take()
            .into_iter()
            .chain(std::mem::take(&mut self.config.initial_solutions))
            .collect();
        for warm in warm_candidates {
            if self.model.is_feasible(&warm, 1e-6) {
                let obj = self.internal_objective(&warm);
                if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                    incumbent = Some((obj, warm));
                    self.record_improvement(&mut stats, start, obj, "warm-start");
                }
            }
        }
        // Eager in-tree separation only pays for itself when there is budget
        // left to exploit the tightened bound: under a tiny node cap the
        // rounds crowd out incumbent hunting instead.
        let roomy_budget = self
            .config
            .budget
            .node_limit
            .map(|limit| limit >= TREE_CUT_MIN_NODES)
            .unwrap_or(true);
        self.eager_separation = self.config.eager_tree_cuts && incumbent.is_some() && roomy_budget;
        if self.eager_separation {
            self.tree_separations_left = TREE_SEPARATIONS_EAGER;
        }

        // A budget that is already spent (an expired deadline handed to a
        // batch job) or a token raised before the solve started must return
        // promptly: warm candidates above still establish the incumbent,
        // but the dive, the cut loop and the tree are all skipped — the
        // solve never descends past the root.
        let skip_root_work = self.config.budget.time_expired(start) || self.is_cancelled();

        if self.config.dive_heuristic && !skip_root_work {
            if let Some(values) = greedy_dive(&self.propagator, &root, &self.objective) {
                if self.model.is_feasible(&values, 1e-6) {
                    let obj = self.internal_objective(&values);
                    if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                        incumbent = Some((obj, values));
                        self.record_improvement(&mut stats, start, obj, "dive");
                    }
                }
            }
        }

        // Pure LP case: no integral variables at all. A raised token or an
        // already-spent budget skips even the single LP solve — prompt
        // return stays bounded by the warm-candidate scan above.
        if self.model.num_integral() == 0 {
            if skip_root_work {
                let interrupted = self.is_cancelled();
                stats.time = start.elapsed();
                stats.limit_reached = true;
                stats.gap = f64::INFINITY;
                stats.best_bound = self.sense_factor * f64::NEG_INFINITY;
                return Ok(match incumbent {
                    Some((obj, values)) => {
                        let status = if interrupted {
                            Status::Interrupted
                        } else {
                            Status::Feasible
                        };
                        Solution::new(status, values, self.sense_factor * obj, stats)
                    }
                    None => {
                        let status = if interrupted {
                            Status::Interrupted
                        } else {
                            Status::Unknown
                        };
                        Solution::without_values(status, stats)
                    }
                });
            }
            return Ok(self.solve_pure_lp(&root, start, stats, incumbent));
        }

        // Seed the cut pool at the root: separate covers/cliques against the
        // root LP, tighten, repeat. The accepted cuts join the shared row set
        // for the whole search. Propagation-only runs skip this — their
        // point is to avoid the simplex, and without LP points neither the
        // root loop nor the in-tree re-checks could separate anything.
        let mut root_closed = false;
        if self.cut_source.is_some()
            && self.use_lp_at(0)
            && !skip_root_work
            && !self.root_cuts(&mut root, &mut stats, &mut incumbent, start)
        {
            // Cuts preserve every integer point, so an empty root box means
            // the model has no integer solution (modulo numerics, in which
            // case the incumbent already in hand is the answer).
            root_closed = true;
        }

        let mut frontier = Frontier::new(self.config.search);
        if !root_closed {
            frontier.push(Node {
                domains: root,
                depth: 0,
                bound: f64::NEG_INFINITY,
                branched: None,
                parent_basis: None,
                parent_bound_is_lp: false,
                branch_up: false,
                branch_step: 0.0,
                nogood_ok: true,
            });
        }

        self.search(
            frontier,
            incumbent,
            f64::NEG_INFINITY,
            f64::INFINITY,
            start,
            stats,
        )
    }

    /// Resumes a snapshotted search: checks the snapshot belongs to this
    /// exact instance, reinstalls the serialized cut pool, pseudo-cost
    /// tables and warm basis cache, rebuilds the open frontier from the
    /// per-node bound deltas, and re-enters the main loop. Root
    /// preprocessing (warm candidates, dive, root cut loop) is skipped on
    /// purpose — the restored state already reflects it.
    fn run_resumed(
        mut self,
        snap: &SolveSnapshot,
        start: Instant,
        mut stats: SolveStats,
    ) -> Result<Solution, IlpError> {
        let fail = |message: String| IlpError::Snapshot { message };
        if self.model.num_integral() == 0 {
            return Err(fail("pure LP solves are never snapshotted".into()));
        }
        if snap.num_vars != self.model.num_vars() {
            return Err(fail(format!(
                "snapshot has {} variables, model has {}",
                snap.num_vars,
                self.model.num_vars()
            )));
        }
        if snap.fingerprint != self.base_fingerprint {
            return Err(fail(format!(
                "snapshot fingerprint {:#018x} does not match instance fingerprint {:#018x}",
                snap.fingerprint, self.base_fingerprint
            )));
        }
        if snap.search != self.config.search {
            return Err(fail(
                "snapshot was captured under a different search order".into(),
            ));
        }

        if !snap.cuts.is_empty() {
            self.cut_rows = snap.cuts.clone();
            self.rebuild_matrix();
        }
        // Pending no-goods were already deduplicated when learned, so both
        // pools feed the emitted set; the pending batch flushes on the same
        // node-count trigger the uninterrupted run would have hit.
        self.pending_cuts = snap.pending_cuts.clone();
        if let Some(generator) = self.cut_source.as_mut() {
            generator.restore_emitted(&snap.cuts);
            generator.restore_emitted(&snap.pending_cuts);
        }
        self.tree_separations_left = snap.tree_separations_left;
        self.eager_separation = snap.eager_separation;
        self.last_bound_emitted = snap.last_bound_emitted;
        self.pseudo = PseudoCosts::from_snapshot(&snap.pseudo);
        self.basis_cache = snap
            .bases
            .iter()
            .map(|(key, basis)| (*key, Rc::new(basis.clone())))
            .collect();
        self.next_basis_key = snap.next_basis_key;
        self.root_basis_key = snap.root_basis_key;
        self.root_lp_cache = snap.root_lp.as_ref().map(|lp| CachedRootLp {
            objective: lp.objective,
            values: lp.values.clone(),
            reduced_costs: lp.reduced_costs.as_ref().map(|(up, down)| ReducedCosts {
                up: up.clone(),
                down: down.clone(),
            }),
            pivots: lp.pivots,
        });

        let base = Domains::from_model(self.model);
        let mut frontier = Frontier::new(self.config.search);
        for node in &snap.frontier {
            frontier.push(restore_node(node, &base));
        }
        // The node counter continues from the capture point, so node
        // budgets keep their whole-tree meaning across interrupts.
        stats.nodes = snap.nodes;
        stats.resumed = true;
        let incumbent = snap.incumbent.clone();
        self.search(
            frontier,
            incumbent,
            snap.root_bound,
            snap.pruned_bound_min,
            start,
            stats,
        )
    }

    /// The main tree loop plus final bookkeeping, shared by the fresh and
    /// the resumed entry points.
    fn search(
        mut self,
        mut frontier: Frontier,
        mut incumbent: Option<(f64, Vec<f64>)>,
        mut root_bound: f64,
        mut pruned_bound_min: f64,
        start: Instant,
        mut stats: SolveStats,
    ) -> Result<Solution, IlpError> {
        let mut limit_reached = false;
        let mut interrupted = false;
        // The node popped when a stop is detected is still open; it is kept
        // aside so a snapshot can return it to the frontier.
        let mut pending: Option<Node> = None;

        while let Some(mut node) = frontier.pop() {
            if self.is_cancelled() {
                interrupted = true;
                pending = Some(node);
                break;
            }
            if self.limits_exceeded(start, &stats) {
                limit_reached = true;
                pending = Some(node);
                break;
            }
            // Cheap prune at pop: the incumbent may have improved since this
            // node was pushed with its parent's bound, and an integral
            // objective rounds that bound up — either way a node that can no
            // longer improve is dropped before it costs a propagation, an
            // LP, or a slot in the node budget.
            let popped_bound = self.strengthen_bound(node.bound);
            if popped_bound >= incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY) - EPS {
                pruned_bound_min = pruned_bound_min.min(popped_bound);
                continue;
            }
            stats.nodes += 1;
            self.emit(SolveEvent::NodeMilestone {
                nodes: stats.nodes,
                incumbent: incumbent.as_ref().map(|(b, _)| self.sense_factor * *b),
            });

            // Install the batched no-goods before this node's work so its
            // propagation and LP already see them.
            let flushed = self.pending_cuts.len() >= NOGOOD_FLUSH;
            if flushed {
                self.flush_pending_cuts(&mut stats);
            }

            stats.propagations += 1;
            // The parent's domains were propagated to fixpoint, so only the
            // rows of the just-branched variable can fire initially — unless
            // a flush just added rows the fixpoint never saw.
            let propagated = match node.branched {
                Some(j) if !flushed => self.propagator.propagate_seeded(&mut node.domains, &[j]),
                _ => self.propagator.propagate(&mut node.domains),
            };
            if propagated == PropagationResult::Infeasible {
                self.learn_nogood(&node, &mut stats);
                continue;
            }

            let incumbent_obj = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
            let parent_bound = node.bound;
            let bound =
                match self.node_bound(&node, &mut stats, incumbent_obj, &mut incumbent, start) {
                    NodeBound::Infeasible => {
                        // An LP-infeasible child is the strongest possible
                        // degradation signal for its branching variable.
                        if let Some(j) = node.branched {
                            if node.parent_bound_is_lp && node.branch_step > INT_EPS {
                                self.pseudo
                                    .record(j, node.branch_up, INFEASIBLE_DEGRADATION);
                            }
                        }
                        self.learn_nogood(&node, &mut stats);
                        continue;
                    }
                    NodeBound::Bound { value, lp } => {
                        node.bound = value;
                        if node.depth == 0 {
                            root_bound = value;
                            self.emit_bound_improved(stats.nodes, value);
                        }
                        // Learn the observed dual-bound degradation of the
                        // branching that created this node.
                        if let (Some(j), true) = (node.branched, lp.is_some()) {
                            if node.parent_bound_is_lp
                                && node.branch_step > INT_EPS
                                && parent_bound > f64::NEG_INFINITY
                            {
                                let degradation =
                                    ((value - parent_bound) / node.branch_step).max(0.0);
                                self.pseudo.record(j, node.branch_up, degradation);
                            }
                        }
                        // Prune against the integrality-strengthened bound:
                        // the raw value stays on the node (pseudo-cost
                        // degradations want the smooth signal), but an
                        // integer objective cannot land strictly between
                        // consecutive integers, so the rounded-up bound is
                        // the one the incumbent has to beat.
                        let strengthened = self.strengthen_bound(value);
                        if strengthened >= incumbent_obj - EPS {
                            pruned_bound_min = pruned_bound_min.min(strengthened);
                            continue;
                        }
                        lp
                    }
                };

            // Reduced-cost bound fixing: with an incumbent in hand, the LP
            // duals prove some integral variables cannot leave their bound
            // in any improving solution. Tightened bounds feed the regular
            // propagation worklist.
            if self.config.rc_fixing {
                let incumbent_now = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
                if let Some(lp) = bound.as_ref() {
                    if let Some(rc) = &lp.reduced_costs {
                        let changed = reduced_cost_fixing(
                            &mut node.domains,
                            lp.objective,
                            rc,
                            &lp.values,
                            incumbent_now,
                        );
                        if !changed.is_empty() {
                            stats.rc_fixed_bounds += changed.len() as u64;
                            // The box now encodes "improves on the
                            // incumbent", not plain feasibility; conflicts
                            // below this node must not become global cuts.
                            node.nogood_ok = false;
                            stats.propagations += 1;
                            if self
                                .propagator
                                .propagate_seeded(&mut node.domains, &changed)
                                == PropagationResult::Infeasible
                            {
                                continue;
                            }
                        }
                    }
                }
            }

            // In-tree separation: re-check the mined pool whenever the
            // incumbent improved at this node (the new incumbent's
            // neighbourhood is where violated covers/cliques are most
            // likely), and at shallow nodes additionally read Gomory cuts
            // off the node's optimal basis — tightening the relaxation near
            // the top of the tree prunes almost everything below it.
            let improved =
                incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY) < incumbent_obj - EPS;
            let shallow = node.depth <= TREE_CUT_DEPTH
                && (self.eager_separation || stats.nodes >= TREE_CUT_MIN_NODES);
            if (improved || shallow) && self.tree_separations_left > 0 && self.cut_source.is_some()
            {
                if let Some(lp) = bound.as_ref() {
                    self.tree_separations_left -= 1;
                    let mined = self.install_cuts(&lp.values, &mut node.domains, &mut stats);
                    if mined == Some(false) {
                        continue;
                    }
                    // A mined install rebuilt the matrix and invalidated
                    // the basis, so Gomory only runs when nothing was
                    // mined (the usual case on the paper circuits).
                    if mined.is_none() && shallow {
                        if let Some(basis) = lp.basis_key.and_then(|key| self.cached_basis(key)) {
                            if self.install_gomory(
                                &basis,
                                &lp.values,
                                &mut node.domains,
                                &mut stats,
                            ) == Some(false)
                            {
                                continue;
                            }
                        }
                    }
                }
            }

            // The scheduled heuristic layer: every HEUR_PERIOD nodes one of
            // the LP-seeded improvement heuristics runs against this node's
            // relaxation.
            if stats.nodes.is_multiple_of(HEUR_PERIOD) {
                if let Some(lp) = bound.as_ref() {
                    self.scheduled_heuristics(&node, lp, &mut incumbent, &mut stats, start);
                }
            }

            if node.domains.all_integral_fixed() {
                if let Some(values) = self.complete_assignment(&node.domains, &mut stats) {
                    if self.model.is_feasible(&values, 1e-6) {
                        let obj = self.internal_objective(&values);
                        if obj < incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY) {
                            incumbent = Some((obj, values));
                            self.record_improvement(&mut stats, start, obj, "node-lp");
                        }
                    }
                }
                continue;
            }

            let branch_var = self.select_branch_var(&node, bound.as_ref(), &mut stats);
            let Some(j) = branch_var else {
                continue;
            };
            self.push_children(&mut frontier, &node, j, bound.as_ref());
        }

        if !frontier.is_empty() && !interrupted {
            limit_reached = true;
        }

        // Final bound and gap bookkeeping. A cancelled search is an open
        // search for bound purposes. The node held at the break folds into
        // the pruned minimum exactly as it always did; the snapshot keeps
        // the pre-fold value, because on resume that node is re-processed,
        // not pruned.
        let stopped_early = limit_reached || interrupted;
        let open_min = frontier.min_bound().unwrap_or(f64::INFINITY);
        let snapshot_pruned = pruned_bound_min;
        if let Some(node) = &pending {
            pruned_bound_min = pruned_bound_min.min(node.bound);
        }
        let best_bound_internal = if stopped_early {
            open_min
                .min(pruned_bound_min)
                .min(incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY))
                .max(root_bound.min(open_min))
        } else {
            incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY)
        };

        stats.time = start.elapsed();
        stats.limit_reached = stopped_early;
        stats.best_bound = self.sense_factor * best_bound_internal;
        for cut in &self.cut_rows {
            stats.cuts_active.bump(cut.kind);
        }

        let snapshot = if self.config.snapshot && stopped_early {
            if let Some(node) = pending {
                frontier.push(node);
            }
            if frontier.is_empty() {
                None
            } else {
                Some(Arc::new(self.capture_snapshot(
                    frontier,
                    &incumbent,
                    stats.nodes,
                    root_bound,
                    snapshot_pruned,
                )))
            }
        } else {
            None
        };
        stats.snapshot_captured = snapshot.is_some();

        match incumbent {
            Some((obj, values)) => {
                let status = if interrupted {
                    Status::Interrupted
                } else if limit_reached {
                    Status::Feasible
                } else {
                    Status::Optimal
                };
                stats.gap = if status == Status::Optimal {
                    0.0
                } else {
                    ((obj - best_bound_internal).max(0.0)) / obj.abs().max(1.0)
                };
                let external_obj = self.sense_factor * obj;
                Ok(Solution::new(status, values, external_obj, stats).with_snapshot(snapshot))
            }
            None => {
                let status = if interrupted {
                    Status::Interrupted
                } else if limit_reached {
                    Status::Unknown
                } else {
                    Status::Infeasible
                };
                stats.gap = f64::INFINITY;
                Ok(Solution::without_values(status, stats).with_snapshot(snapshot))
            }
        }
    }

    /// Serializes the open search state into a [`SolveSnapshot`].
    /// `frontier` already contains the node that was in hand when the stop
    /// was detected, so the restored frontier pops it first.
    fn capture_snapshot(
        &self,
        frontier: Frontier,
        incumbent: &Option<(f64, Vec<f64>)>,
        nodes: u64,
        root_bound: f64,
        pruned_bound_min: f64,
    ) -> SolveSnapshot {
        let base = Domains::from_model(self.model);
        SolveSnapshot {
            fingerprint: self.base_fingerprint,
            num_vars: self.model.num_vars(),
            search: self.config.search,
            nodes,
            frontier: frontier
                .into_nodes()
                .iter()
                .map(|node| snapshot_node(node, &base))
                .collect(),
            incumbent: incumbent.clone(),
            root_bound,
            pruned_bound_min,
            last_bound_emitted: self.last_bound_emitted,
            tree_separations_left: self.tree_separations_left,
            eager_separation: self.eager_separation,
            cuts: self.cut_rows.clone(),
            pending_cuts: self.pending_cuts.clone(),
            pseudo: self.pseudo.to_snapshot(),
            bases: self
                .basis_cache
                .iter()
                .map(|(key, basis)| (*key, (**basis).clone()))
                .collect(),
            next_basis_key: self.next_basis_key,
            root_lp: self.root_lp_cache.as_ref().map(|lp| RootLpSnapshot {
                objective: lp.objective,
                values: lp.values.clone(),
                reduced_costs: lp
                    .reduced_costs
                    .as_ref()
                    .map(|rc| (rc.up.clone(), rc.down.clone())),
                pivots: lp.pivots,
            }),
            root_basis_key: self.root_basis_key,
        }
    }

    fn solve_pure_lp(
        &mut self,
        root: &Domains,
        start: Instant,
        mut stats: SolveStats,
        incumbent: Option<(f64, Vec<f64>)>,
    ) -> Solution {
        let lp = solve_lp_priced(
            self.propagator.matrix(),
            &self.objective,
            self.objective_constant,
            root,
            self.config.max_lp_pivots,
            self.config.pricing,
        );
        stats.lp_solves += 1;
        tally_lp(&mut stats, &lp);
        stats.time = start.elapsed();
        match lp.status {
            LpStatus::Optimal => {
                stats.best_bound = self.sense_factor * lp.objective;
                // The root relaxation *is* the solution here; log it as an
                // improvement so time-to-target metrics cover root-solved
                // instances, not only branched incumbents.
                let beats_warm = incumbent
                    .as_ref()
                    .map(|(b, _)| lp.objective < *b - EPS)
                    .unwrap_or(true);
                if beats_warm {
                    self.record_improvement(&mut stats, start, lp.objective, "lp");
                }
                Solution::new(
                    Status::Optimal,
                    lp.values,
                    self.sense_factor * lp.objective,
                    stats,
                )
            }
            LpStatus::Infeasible => Solution::without_values(Status::Infeasible, stats),
            LpStatus::Unbounded => Solution::without_values(Status::Unbounded, stats),
            LpStatus::IterationLimit => {
                stats.limit_reached = true;
                Solution::without_values(Status::Unknown, stats)
            }
        }
    }

    /// Logs an incumbent improvement (external objective sense) into the
    /// stats so callers can compute time-to-target metrics and attribute
    /// the incumbent to the layer that produced it, and streams it to any
    /// attached event sink.
    fn record_improvement(
        &mut self,
        stats: &mut SolveStats,
        start: Instant,
        internal_obj: f64,
        source: &'static str,
    ) {
        let objective = self.sense_factor * internal_obj;
        stats.improvements.push(crate::solution::Improvement {
            nodes: stats.nodes,
            seconds: start.elapsed().as_secs_f64(),
            objective,
            source,
        });
        self.emit(SolveEvent::Incumbent {
            nodes: stats.nodes,
            objective,
        });
    }

    /// The node-count-scheduled heuristic layer: rotates deterministically
    /// through LP-guided diving, the feasibility pump and RINS improvement
    /// (a pure function of the node counter, so the schedule survives
    /// snapshot/resume and engine-vs-rebuild comparisons unchanged). A
    /// produced assignment only replaces the incumbent when it improves it.
    fn scheduled_heuristics(
        &mut self,
        node: &Node,
        lp: &NodeLp,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        stats: &mut SolveStats,
        start: Instant,
    ) {
        let found = match (stats.nodes / HEUR_PERIOD) % 3 {
            0 => lp_guided_dive(&self.propagator, &node.domains, &lp.values, &self.objective)
                .map(|values| ("lp-dive", values)),
            1 => self
                .feasibility_pump(node, lp, stats)
                .map(|values| ("pump", values)),
            _ => incumbent
                .as_ref()
                .and_then(|(_, inc)| {
                    rins_dive(
                        &self.propagator,
                        &node.domains,
                        inc,
                        &lp.values,
                        &self.objective,
                    )
                })
                .map(|values| ("rins", values)),
        };
        let Some((source, values)) = found else {
            return;
        };
        if !self.model.is_feasible(&values, 1e-6) {
            return;
        }
        let obj = self.internal_objective(&values);
        let current = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
        if obj < current - EPS {
            *incumbent = Some((obj, values));
            self.record_improvement(stats, start, obj, source);
        }
    }

    /// One bounded feasibility-pump run from the node relaxation: alternate
    /// rounding the current LP point to the nearest integral box point with
    /// an LP minimising the (binary-variable) L1 distance back to it. The
    /// pump succeeds when a distance LP lands integral — an LP-feasible
    /// integral point is a feasible assignment — and gives up on a cycle
    /// (repeated rounding target; deterministic runs stop rather than
    /// perturb) or after a fixed number of iterations.
    fn feasibility_pump(
        &mut self,
        node: &Node,
        lp: &NodeLp,
        stats: &mut SolveStats,
    ) -> Option<Vec<f64>> {
        const PUMP_ITERS: usize = 8;
        let n = node.domains.len();
        let mut point = lp.values.clone();
        let mut last_target: Option<Vec<f64>> = None;
        for _ in 0..PUMP_ITERS {
            let target = pump_target(&node.domains, &point);
            if last_target.as_ref() == Some(&target) {
                return None;
            }
            let mut distance = vec![0.0; n];
            for (j, coeff) in distance.iter_mut().enumerate() {
                if self.binary_mask[j] {
                    *coeff = if target[j] > 0.5 { -1.0 } else { 1.0 };
                }
            }
            let dist_lp = solve_lp_priced(
                self.propagator.matrix(),
                &distance,
                0.0,
                &node.domains,
                self.config.max_lp_pivots,
                self.config.pricing,
            );
            stats.lp_solves += 1;
            tally_lp(stats, &dist_lp);
            if dist_lp.status != LpStatus::Optimal {
                return None;
            }
            point = dist_lp.values;
            let integral = (0..n).all(|j| {
                !node.domains.is_integral(j) || (point[j] - point[j].round()).abs() <= INT_EPS
            });
            if integral {
                let mut values = point;
                for (j, v) in values.iter_mut().enumerate() {
                    if node.domains.is_integral(j) {
                        *v = v.round();
                    }
                }
                return Some(values);
            }
            last_target = Some(target);
        }
        None
    }

    fn internal_objective(&self, values: &[f64]) -> f64 {
        self.objective_constant
            + self
                .objective
                .iter()
                .zip(values)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    fn limits_exceeded(&self, start: Instant, stats: &SolveStats) -> bool {
        self.config.budget.nodes_exhausted(stats.nodes) || self.config.budget.time_expired(start)
    }

    /// Objective bound over the box: every variable at its cheapest bound.
    fn propagation_bound(&self, domains: &Domains) -> f64 {
        let mut bound = self.objective_constant;
        for (j, &c) in self.objective.iter().enumerate() {
            bound += if c >= 0.0 {
                c * domains.lower(j)
            } else {
                c * domains.upper(j)
            };
        }
        bound
    }

    /// Rounds a dual bound up to the next integer when the objective is
    /// provably integer-valued ([`Self::integral_objective`]); the small
    /// slack absorbs LP round-off so a bound sitting *on* an integer is
    /// never pushed past it.
    fn strengthen_bound(&self, value: f64) -> f64 {
        if self.integral_objective && value.is_finite() {
            (value - 1e-6).ceil()
        } else {
            value
        }
    }

    fn use_lp_at(&self, depth: usize) -> bool {
        match self.config.bound_mode {
            BoundMode::Propagation => false,
            BoundMode::LpRelaxation => true,
            BoundMode::Hybrid { lp_depth } => depth <= lp_depth,
        }
    }

    fn node_bound(
        &mut self,
        node: &Node,
        stats: &mut SolveStats,
        incumbent_obj: f64,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        start: Instant,
    ) -> NodeBound {
        // Eager (chained, roomy-budget) solves carry the integral ceiling on
        // the node bound itself: the staircase values prove optimality
        // faster but pollute pseudo-cost degradation learning, so
        // exploratory solves keep the smooth LP value and only strengthen at
        // prune points.
        let prop_bound = if self.eager_separation {
            self.strengthen_bound(self.propagation_bound(&node.domains))
        } else {
            self.propagation_bound(&node.domains)
        };
        if !self.use_lp_at(node.depth) {
            return NodeBound::Bound {
                value: prop_bound,
                lp: None,
            };
        }
        // The root cut loop may already have solved this exact relaxation;
        // consume its result instead of repeating the most expensive LP of
        // the tree.
        let cached = if node.depth == 0 {
            self.root_lp_cache.take()
        } else {
            None
        };
        let (lp_objective, lp_values, lp_rc, basis_key) = match cached {
            Some(root) => {
                stats.node_lp_pivots.push(root.pivots);
                (
                    root.objective,
                    root.values,
                    root.reduced_costs,
                    self.root_basis_key.take(),
                )
            }
            None => match self.solve_node_lp(node, stats) {
                SolvedNodeLp::Infeasible => return NodeBound::Infeasible,
                SolvedNodeLp::NoBound => {
                    return NodeBound::Bound {
                        value: prop_bound,
                        lp: None,
                    }
                }
                SolvedNodeLp::Optimal {
                    objective,
                    values,
                    reduced_costs,
                    basis_key,
                } => (objective, values, reduced_costs, basis_key),
            },
        };
        // If the relaxation happens to be integral it is a feasible MILP
        // solution; use it to tighten the incumbent.
        let integral = (0..node.domains.len()).all(|j| {
            !node.domains.is_integral(j) || (lp_values[j] - lp_values[j].round()).abs() <= INT_EPS
        });
        if integral {
            let mut values = lp_values.clone();
            for (j, v) in values.iter_mut().enumerate() {
                if node.domains.is_integral(j) {
                    *v = v.round();
                }
            }
            if self.model.is_feasible(&values, 1e-6) {
                let obj = self.internal_objective(&values);
                if obj < incumbent_obj {
                    *incumbent = Some((obj, values));
                    self.record_improvement(stats, start, obj, "node-lp");
                }
            }
        } else if node.depth <= 2 {
            // Try an LP-guided rounding heuristic near the top of the tree,
            // where it is most likely to pay off.
            if let Some(values) =
                round_and_repair(&self.propagator, &node.domains, &lp_values, &self.objective)
            {
                if self.model.is_feasible(&values, 1e-6) {
                    let obj = self.internal_objective(&values);
                    let current = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
                    if obj < current {
                        *incumbent = Some((obj, values));
                        self.record_improvement(stats, start, obj, "rounding");
                    }
                }
            }
        }
        let value = if self.eager_separation {
            self.strengthen_bound(lp_objective).max(prop_bound)
        } else {
            lp_objective.max(prop_bound)
        };
        NodeBound::Bound {
            value,
            lp: Some(NodeLp {
                objective: lp_objective,
                values: lp_values,
                reduced_costs: lp_rc,
                basis_key,
            }),
        }
    }

    /// Solves the LP relaxation of a node, warm-starting from the parent's
    /// cached basis with the dual simplex when possible and falling back to
    /// a cold (re)factorisation otherwise.
    fn solve_node_lp(&mut self, node: &Node, stats: &mut SolveStats) -> SolvedNodeLp {
        let max_pivots = self.config.max_lp_pivots;
        // A dual re-solve is only worth it while it stays *incremental*: a
        // child whose propagation/fixing moved half the bounds is re-solving
        // from scratch, and the primal does that better. Budget the warm
        // path at a small multiple of the expected incremental work and let
        // an overrun fall through to the cold factorization below.
        let warm_budget = max_pivots.min(128 + self.propagator.matrix().num_rows() as u64 / 4);
        if self.config.lp_warm_start {
            if let Some(basis) = node.parent_basis.and_then(|key| self.cached_basis(key)) {
                if basis.age() < BASIS_MAX_AGE {
                    if let Some((lp, next)) = resolve_with_basis_priced(
                        self.propagator.matrix(),
                        &self.objective,
                        self.objective_constant,
                        &basis,
                        &node.domains,
                        warm_budget,
                        self.config.pricing,
                    ) {
                        tally_lp(stats, &lp);
                        stats.warm_lp_pivots += lp.pivots;
                        match lp.status {
                            LpStatus::Infeasible | LpStatus::Optimal => {
                                stats.lp_solves += 1;
                                stats.warm_lp_solves += 1;
                                stats.node_lp_pivots.push(lp.pivots);
                                if lp.status == LpStatus::Infeasible {
                                    return SolvedNodeLp::Infeasible;
                                }
                                let basis_key = next.map(|b| self.store_basis(b));
                                return SolvedNodeLp::Optimal {
                                    objective: lp.objective,
                                    values: lp.values,
                                    reduced_costs: lp.reduced_costs,
                                    basis_key,
                                };
                            }
                            // A dual re-solve that hits its pivot budget is
                            // abandoned (its pivots were counted above); the
                            // node re-factorises cold below.
                            LpStatus::Unbounded | LpStatus::IterationLimit => {}
                        }
                    }
                }
            }
            let (lp, new_basis) = solve_lp_basis_priced(
                self.propagator.matrix(),
                &self.objective,
                self.objective_constant,
                &node.domains,
                max_pivots,
                self.config.pricing,
            );
            stats.lp_solves += 1;
            tally_lp(stats, &lp);
            stats.refactorizations += 1;
            stats.node_lp_pivots.push(lp.pivots);
            match lp.status {
                LpStatus::Infeasible => SolvedNodeLp::Infeasible,
                LpStatus::Optimal => {
                    let basis_key = new_basis.map(|b| self.store_basis(b));
                    SolvedNodeLp::Optimal {
                        objective: lp.objective,
                        values: lp.values,
                        reduced_costs: lp.reduced_costs,
                        basis_key,
                    }
                }
                LpStatus::Unbounded | LpStatus::IterationLimit => SolvedNodeLp::NoBound,
            }
        } else {
            let lp = solve_lp_priced(
                self.propagator.matrix(),
                &self.objective,
                self.objective_constant,
                &node.domains,
                max_pivots,
                self.config.pricing,
            );
            stats.lp_solves += 1;
            tally_lp(stats, &lp);
            stats.node_lp_pivots.push(lp.pivots);
            match lp.status {
                LpStatus::Infeasible => SolvedNodeLp::Infeasible,
                LpStatus::Optimal => SolvedNodeLp::Optimal {
                    objective: lp.objective,
                    values: lp.values,
                    reduced_costs: lp.reduced_costs,
                    basis_key: None,
                },
                LpStatus::Unbounded | LpStatus::IterationLimit => SolvedNodeLp::NoBound,
            }
        }
    }

    fn complete_assignment(&self, domains: &Domains, stats: &mut SolveStats) -> Option<Vec<f64>> {
        let has_free_continuous =
            (0..domains.len()).any(|j| !domains.is_integral(j) && !domains.is_fixed(j));
        if !has_free_continuous {
            return Some(domains.assignment());
        }
        // Optimise the remaining continuous variables with the integral part
        // fixed.
        let lp = solve_lp_priced(
            self.propagator.matrix(),
            &self.objective,
            self.objective_constant,
            domains,
            self.config.max_lp_pivots,
            self.config.pricing,
        );
        stats.lp_solves += 1;
        tally_lp(stats, &lp);
        match lp.status {
            LpStatus::Optimal => Some(lp.values),
            _ => None,
        }
    }

    fn select_branch_var(
        &mut self,
        node: &Node,
        lp: Option<&NodeLp>,
        stats: &mut SolveStats,
    ) -> Option<usize> {
        let domains = &node.domains;
        let candidates: Vec<usize> = (0..domains.len())
            .filter(|&j| domains.is_integral(j) && !domains.is_fixed(j))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let most_constrained = |cands: &[usize]| {
            cands
                .iter()
                .copied()
                .max_by_key(|&j| (self.occurrence[j], usize::MAX - j))
        };
        let lp_values = lp.map(|l| l.values.as_slice());
        match self.config.branching {
            BranchRule::InputOrder => candidates.first().copied(),
            BranchRule::MostConstrained => most_constrained(&candidates),
            BranchRule::MostFractional => {
                if let Some(values) = lp_values {
                    let most = candidates
                        .iter()
                        .copied()
                        .map(|j| {
                            let frac = (values[j] - values[j].round()).abs();
                            (j, frac)
                        })
                        .filter(|(_, frac)| *frac > INT_EPS)
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                    if let Some((j, _)) = most {
                        return Some(j);
                    }
                }
                most_constrained(&candidates)
            }
            BranchRule::PseudoCost => {
                let Some(lp) = lp else {
                    // Propagation-only nodes carry no LP point to learn
                    // from; use the static structural rule.
                    return most_constrained(&candidates);
                };
                let fractional: Vec<(usize, f64)> = candidates
                    .iter()
                    .copied()
                    .filter(|&j| (lp.values[j] - lp.values[j].round()).abs() > INT_EPS)
                    .map(|j| (j, lp.values[j]))
                    .collect();
                if fractional.is_empty() {
                    return most_constrained(&candidates);
                }
                // Reliability pass: at shallow depth, seed the pseudo-costs
                // of unobserved fractional candidates by strong branching
                // (both child LPs, warm from this node's basis).
                if node.depth <= STRONG_DEPTH {
                    if let Some(basis) = lp.basis_key.and_then(|key| self.cached_basis(key)) {
                        let mut unreliable: Vec<usize> = fractional
                            .iter()
                            .map(|&(j, _)| j)
                            .filter(|&j| self.pseudo.observations(j) < RELIABILITY)
                            .collect();
                        unreliable.sort_by_key(|&j| (usize::MAX - self.occurrence[j], j));
                        unreliable.truncate(STRONG_CANDIDATES);
                        for j in unreliable {
                            self.strong_branch(&basis, &node.domains, j, lp, stats);
                        }
                    }
                }
                fractional
                    .into_iter()
                    .map(|(j, v)| {
                        let f = v - v.floor();
                        let down = self.pseudo.estimate(j, false) * f.max(INT_EPS);
                        let up = self.pseudo.estimate(j, true) * (1.0 - f).max(INT_EPS);
                        (j, down.max(1e-9) * up.max(1e-9))
                    })
                    .max_by(|a, b| {
                        a.1.partial_cmp(&b.1)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            // Ties break towards the smaller variable index.
                            .then_with(|| b.0.cmp(&a.0))
                    })
                    .map(|(j, _)| j)
            }
        }
    }

    /// Strong-branches variable `j` at an LP node: solves both child LPs
    /// warm from the node's basis under a small pivot budget and records
    /// the observed per-unit degradations as pseudo-cost observations.
    fn strong_branch(
        &mut self,
        basis: &Basis,
        domains: &Domains,
        j: usize,
        lp: &NodeLp,
        stats: &mut SolveStats,
    ) {
        let v = lp.values[j];
        let floor = v.floor();
        for up in [false, true] {
            let mut child = domains.clone();
            let tightened = if up {
                child.tighten_lower(j, floor + 1.0)
            } else {
                child.tighten_upper(j, floor)
            };
            if !tightened || child.is_infeasible() {
                continue;
            }
            let Some((child_lp, _)) = resolve_with_basis_priced(
                self.propagator.matrix(),
                &self.objective,
                self.objective_constant,
                basis,
                &child,
                STRONG_PIVOTS,
                self.config.pricing,
            ) else {
                continue;
            };
            stats.lp_solves += 1;
            tally_lp(stats, &child_lp);
            stats.strong_branch_solves += 1;
            let step = if up {
                (floor + 1.0 - v).max(INT_EPS)
            } else {
                (v - floor).max(INT_EPS)
            };
            match child_lp.status {
                LpStatus::Optimal => {
                    let degradation = ((child_lp.objective - lp.objective) / step).max(0.0);
                    self.pseudo.record(j, up, degradation);
                }
                LpStatus::Infeasible => self.pseudo.record(j, up, INFEASIBLE_DEGRADATION),
                LpStatus::Unbounded | LpStatus::IterationLimit => {}
            }
        }
    }

    fn push_children(&self, frontier: &mut Frontier, node: &Node, j: usize, lp: Option<&NodeLp>) {
        let lower = node.domains.lower(j);
        let upper = node.domains.upper(j);
        debug_assert!(upper > lower + EPS);
        let lp_values = lp.map(|l| l.values.as_slice());
        let parent_basis = lp.and_then(|l| l.basis_key);
        let parent_bound_is_lp = lp.is_some();
        let v_lp = lp_values.map(|v| v[j]);

        if upper - lower <= 1.0 + EPS {
            // Binary-style split: fix to each bound. Push the preferred value
            // last so depth-first search explores it first.
            let preferred = if let Some(v) = v_lp {
                if v >= 0.5 * (lower + upper) {
                    upper
                } else {
                    lower
                }
            } else if self.objective[j] >= 0.0 {
                lower
            } else {
                upper
            };
            let other = if (preferred - lower).abs() < EPS {
                upper
            } else {
                lower
            };
            for value in [other, preferred] {
                let branch_up = (value - upper).abs() < EPS;
                let branch_step = v_lp
                    .map(|v| if branch_up { upper - v } else { v - lower }.max(0.0))
                    .unwrap_or(0.0);
                let mut domains = node.domains.clone();
                if domains.fix(j, value) {
                    frontier.push(Node {
                        domains,
                        depth: node.depth + 1,
                        bound: node.bound,
                        branched: Some(j),
                        parent_basis,
                        parent_bound_is_lp,
                        branch_up,
                        branch_step,
                        // Fixing a binary keeps the path describable as a
                        // set of 0/1 decisions, so no-good learning stays
                        // sound below this child.
                        nogood_ok: node.nogood_ok && self.binary_mask[j],
                    });
                }
            }
        } else {
            // Interval split around the LP value or the midpoint.
            let pivot = v_lp.unwrap_or(0.5 * (lower + upper));
            let split = pivot.floor().clamp(lower, upper - 1.0);
            let mut down = node.domains.clone();
            down.tighten_upper(j, split);
            let mut up = node.domains.clone();
            up.tighten_lower(j, split + 1.0);
            for (domains, branch_up) in [(up, true), (down, false)] {
                let branch_step = v_lp
                    .map(|v| {
                        if branch_up {
                            (split + 1.0 - v).max(0.0)
                        } else {
                            (v - split).max(0.0)
                        }
                    })
                    .unwrap_or(0.0);
                if !domains.is_infeasible() {
                    frontier.push(Node {
                        domains,
                        depth: node.depth + 1,
                        bound: node.bound,
                        branched: Some(j),
                        parent_basis,
                        parent_bound_is_lp,
                        branch_up,
                        branch_step,
                        // An interval split is not a 0/1 decision; a no-good
                        // over fixed binaries would not cover it.
                        nogood_ok: false,
                    });
                }
            }
        }
    }
}

/// Reduced-cost bound fixing: with incumbent objective `incumbent_obj` and
/// an optimal node LP of objective `lp_objective`, any solution moving
/// variable `j` a further `t` integer steps off the bound it sits on costs
/// at least `lp_objective + rc·t`; steps that push this above the
/// improvement cutoff can be cut. Returns the tightened variable indices
/// (to seed the propagation worklist).
fn reduced_cost_fixing(
    domains: &mut Domains,
    lp_objective: f64,
    rc: &ReducedCosts,
    lp_values: &[f64],
    incumbent_obj: f64,
) -> Vec<usize> {
    let mut changed = Vec::new();
    // Matches the node pruning cutoff: only solutions strictly better than
    // `incumbent_obj - EPS` are still searched for.
    let budget = incumbent_obj - EPS - lp_objective;
    if !budget.is_finite() || budget <= 0.0 {
        return changed;
    }
    #[allow(clippy::needless_range_loop)]
    for j in 0..domains.len() {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        let lower = domains.lower(j);
        let upper = domains.upper(j);
        let up_cost = rc.up[j];
        if up_cost > EPS && (lp_values[j] - lower).abs() <= 1e-6 {
            let allowed_steps = (budget / up_cost + INT_EPS).floor();
            let new_upper = lower + allowed_steps;
            if new_upper < upper - 0.5 && domains.tighten_upper(j, new_upper) {
                changed.push(j);
                continue;
            }
        }
        let down_cost = rc.down[j];
        if down_cost > EPS && (lp_values[j] - upper).abs() <= 1e-6 {
            let allowed_steps = (budget / down_cost + INT_EPS).floor();
            let new_lower = upper - allowed_steps;
            if new_lower > lower + 0.5 && domains.tighten_lower(j, new_lower) {
                changed.push(j);
            }
        }
    }
    changed
}

/// The LP relaxation solved at a node, as consumed by reduced-cost fixing,
/// cut separation, branching and child creation.
struct NodeLp {
    /// Optimal LP objective (minimisation sense).
    objective: f64,
    /// Optimal LP point over the original variables.
    values: Vec<f64>,
    /// Reduced costs at optimality (warm-capable path only).
    reduced_costs: Option<ReducedCosts>,
    /// Cache key of the stored optimal basis, if it was kept.
    basis_key: Option<u64>,
}

enum NodeBound {
    Infeasible,
    Bound { value: f64, lp: Option<NodeLp> },
}

/// Outcome of [`BranchAndBound::solve_node_lp`].
enum SolvedNodeLp {
    /// The relaxation is infeasible (the node can be discarded).
    Infeasible,
    /// No usable LP bound (unbounded relaxation or pivot budget exhausted);
    /// the caller falls back to the propagation bound.
    NoBound,
    /// The relaxation solved to optimality.
    Optimal {
        objective: f64,
        values: Vec<f64>,
        reduced_costs: Option<ReducedCosts>,
        basis_key: Option<u64>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn exact_configs() -> Vec<SolverConfig> {
        vec![
            SolverConfig::exact(),
            SolverConfig::exact().with_bound_mode(BoundMode::Propagation),
            SolverConfig::exact()
                .with_bound_mode(BoundMode::Hybrid { lp_depth: 2 })
                .with_branching(BranchRule::MostFractional),
            SolverConfig::exact().with_search(SearchOrder::BestFirst),
            SolverConfig::exact().with_branching(BranchRule::InputOrder),
            SolverConfig::exact().with_branching(BranchRule::PseudoCost),
            SolverConfig::exact()
                .with_branching(BranchRule::PseudoCost)
                .with_lp_warm_start(false)
                .with_rc_fixing(false),
            SolverConfig::exact()
                .with_branching(BranchRule::MostConstrained)
                .with_lp_warm_start(false)
                .with_rc_fixing(false),
        ]
    }

    #[test]
    fn knapsack_is_solved_optimally_by_all_strategies() {
        // max 6a + 5b + 4c  s.t. 3a + 2b + 2c <= 4 => best is b + c = 9.
        let mut m = Model::new("knap");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)], Sense::Maximize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal(), "config {config:?}");
            assert!((sol.objective() - 9.0).abs() < 1e-6, "config {config:?}");
            assert!(!sol.is_one(a));
            assert!(sol.is_one(b));
            assert!(sol.is_one(c));
        }
    }

    #[test]
    fn set_cover_minimisation() {
        // Cover {1,2,3} with sets A={1,2}(3), B={2,3}(3), C={1,3}(3), D={1,2,3}(5).
        // Optimal: D alone costs 5, any two of A/B/C cost 6 => D wins.
        let mut m = Model::new("cover");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.add_geq([(a, 1.0), (c, 1.0), (d, 1.0)], 1.0, "e1");
        m.add_geq([(a, 1.0), (b, 1.0), (d, 1.0)], 1.0, "e2");
        m.add_geq([(b, 1.0), (c, 1.0), (d, 1.0)], 1.0, "e3");
        m.set_objective([(a, 3.0), (b, 3.0), (c, 3.0), (d, 5.0)], Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert!((sol.objective() - 5.0).abs() < 1e-6);
            assert!(sol.is_one(d));
        }
    }

    #[test]
    fn search_layer_counters_are_recorded() {
        // A model that needs real branching at LP bound mode, solved with
        // the warm default: every new counter must be populated coherently.
        let mut m = Model::new("counters");
        let vars: Vec<_> = (0..10).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.windows(3).step_by(2) {
            m.add_geq(w.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 2.0, "need");
        }
        m.add_leq(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 3) as f64))
                .collect::<Vec<_>>(),
            11.0,
            "cap",
        );
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 4) as f64))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let config = SolverConfig::exact().with_presolve(false).with_cuts(false);
        let sol = m.solve(&config).expect("solve");
        assert!(sol.is_optimal());
        let stats = sol.stats();
        // One per-node iteration record per node-relaxation LP, never more
        // than the LP solve count, and their sum never exceeds the global
        // pivot total (which also counts strong-branching probes).
        assert!(!stats.node_lp_pivots.is_empty());
        assert!(stats.node_lp_pivots.len() as u64 <= stats.lp_solves);
        assert!(stats.node_lp_pivots.iter().sum::<u64>() <= stats.lp_pivots);
        assert!(stats.warm_lp_pivots <= stats.lp_pivots);
        assert!(stats.refactorizations >= 1, "the root factorises cold");
        // The cold configuration records none of the warm-path counters.
        let cold = config
            .with_lp_warm_start(false)
            .with_rc_fixing(false)
            .with_branching(BranchRule::MostConstrained);
        let cold_sol = m.solve(&cold).expect("solve");
        assert!(cold_sol.is_optimal());
        assert!((cold_sol.objective() - sol.objective()).abs() < 1e-6);
        let cold_stats = cold_sol.stats();
        assert_eq!(cold_stats.warm_lp_solves, 0);
        assert_eq!(cold_stats.refactorizations, 0);
        assert_eq!(cold_stats.strong_branch_solves, 0);
        assert_eq!(cold_stats.rc_fixed_bounds, 0);
        assert!(!cold_stats.node_lp_pivots.is_empty());
    }

    #[test]
    fn infeasible_model_is_detected() {
        let mut m = Model::new("bad");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "impossible");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn equality_assignment_problem() {
        // 3 tasks, 3 machines, permutation with cost matrix; optimal = 1+2+1 = 4
        let costs = [[1.0, 4.0, 5.0], [3.0, 2.0, 7.0], [1.0, 3.0, 4.0]];
        // optimal assignment: t0->m0 (1), t1->m1 (2), t2->?? m2 (4) = 7
        // or t0->m2(5), t1->m1(2), t2->m0(1) = 8; or t0->m0(1), t1->m1(2), t2->m2(4)=7
        // best is 7.
        let mut m = Model::new("assign");
        let mut x = Vec::new();
        for t in 0..3 {
            let row: Vec<_> = (0..3).map(|j| m.add_binary(format!("x{t}{j}"))).collect();
            m.add_eq(
                row.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
                1.0,
                format!("task{t}"),
            );
            x.push(row);
        }
        for j in 0..3 {
            m.add_leq(
                (0..3).map(|t| (x[t][j], 1.0)).collect::<Vec<_>>(),
                1.0,
                format!("mach{j}"),
            );
        }
        let obj: Vec<_> = (0..3)
            .flat_map(|t| (0..3).map(move |j| (t, j)))
            .map(|(t, j)| (x[t][j], costs[t][j]))
            .collect();
        m.set_objective(obj, Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert!(
                (sol.objective() - 7.0).abs() < 1e-6,
                "got {}",
                sol.objective()
            );
        }
    }

    #[test]
    fn general_integer_variables() {
        // min 3x + 2y  s.t.  x + y >= 7, x <= 4, y <= 5, x,y integer
        // best: x=2, y=5 -> 16.
        let mut m = Model::new("int");
        let x = m.add_integer("x", 0, 4);
        let y = m.add_integer("y", 0, 5);
        m.add_geq([(x, 1.0), (y, 1.0)], 7.0, "need");
        m.set_objective([(x, 3.0), (y, 2.0)], Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert_eq!(sol.int_value(x), 2);
            assert_eq!(sol.int_value(y), 5);
            assert!((sol.objective() - 16.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y - x_c  s.t. x_c <= 2.5*y, x_c <= 1.7, y binary.
        // y=1, x_c=1.7 -> -0.7 ; y=0 -> 0. Optimal -0.7.
        let mut m = Model::new("mix");
        let y = m.add_binary("y");
        let xc = m.add_continuous("xc", 0.0, 1.7);
        m.add_leq([(xc, 1.0), (y, -2.5)], 0.0, "link");
        m.set_objective([(y, 1.0), (xc, -1.0)], Sense::Minimize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() + 0.7).abs() < 1e-6);
        assert!(sol.is_one(y));
        assert!((sol.value(xc) - 1.7).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new("warm");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let config = SolverConfig::exact().with_initial_solution(vec![1.0, 0.0]);
        let sol = m.solve(&config).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_yields_feasible_or_unknown() {
        let mut m = Model::new("limited");
        let vars: Vec<_> = (0..30).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.chunks(3) {
            m.add_geq(
                w.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
                1.0,
                "chunk",
            );
        }
        m.set_objective(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let config = SolverConfig {
            budget: Budget::nodes(1),
            dive_heuristic: false,
            bound_mode: BoundMode::Propagation,
            ..SolverConfig::default()
        };
        let sol = m.solve(&config).expect("solve");
        assert!(matches!(sol.status(), Status::Feasible | Status::Unknown));
        assert!(sol.stats().limit_reached || sol.status() == Status::Feasible);
    }

    #[test]
    fn pure_lp_model() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_leq([(x, 1.0), (y, 2.0)], 14.0, "a");
        m.add_leq([(x, 3.0), (y, -1.0)], 0.0, "b");
        m.set_objective([(x, 3.0), (y, 4.0)], Sense::Maximize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        // optimum at x=2, y=6 -> 30
        assert!(
            (sol.objective() - 30.0).abs() < 1e-5,
            "got {}",
            sol.objective()
        );
    }

    /// A minimisation model that needs a deep search under the exact
    /// configuration, plus a known feasible all-ones warm start — the
    /// fixture for the cancellation and deadline tests.
    fn deep_model() -> (Model, Vec<f64>) {
        let mut m = Model::new("deep");
        let vars: Vec<_> = (0..18).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.windows(5).step_by(2) {
            m.add_geq(w.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(), 2.0, "need");
        }
        for (c, w) in vars.chunks(6).enumerate() {
            m.add_leq(
                w.iter()
                    .enumerate()
                    .map(|(i, &v)| (v, 1.0 + ((i + c) % 3) as f64))
                    .collect::<Vec<_>>(),
                7.0,
                "cap",
            );
        }
        m.set_objective(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (v, 1.0 + (i % 5) as f64 + 0.1 * (i % 7) as f64))
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        // Every other variable set: each 5-window holds ≥ 2 ones and each
        // capacity chunk stays within budget.
        let warm: Vec<f64> = (0..vars.len())
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        assert!(m.is_feasible(&warm, 1e-6));
        (m, warm)
    }

    #[test]
    fn node_triggered_cancellation_stops_deterministically_with_incumbent() {
        use crate::session::SolveSession;
        let (m, warm) = deep_model();
        // Propagation bounds keep the tree deep enough to cancel into.
        let config = SolverConfig::exact()
            .with_bound_mode(BoundMode::Propagation)
            .with_presolve(false)
            .with_cuts(false)
            .with_initial_solution(warm.clone());
        let optimal = m.solve(&config).expect("reference solve");
        assert!(optimal.is_optimal());
        assert!(
            optimal.stats().nodes > 3,
            "fixture too easy: {} nodes",
            optimal.stats().nodes
        );

        // The observer raises the token at the third node milestone; the
        // loop notices at the next pop, so exactly 3 nodes are explored —
        // no sleeps, no wall-clock, fully deterministic.
        let mut session = SolveSession::with_config(&m, config);
        let token = session.cancel_token();
        let observer_token = token.clone();
        let sol = session
            .on_event(move |event| {
                if let SolveEvent::NodeMilestone { nodes, .. } = event {
                    if *nodes >= 3 {
                        observer_token.cancel();
                    }
                }
            })
            .solve()
            .expect("cancelled solve");
        assert!(token.is_cancelled());
        assert_eq!(sol.status(), Status::Interrupted);
        assert_eq!(sol.stats().nodes, 3);
        assert!(sol.stats().limit_reached);
        // The best incumbent seen so far (at least the warm start) survives.
        assert!(sol.is_feasible());
        assert!(!sol.values().is_empty());
        assert!(m.is_feasible(sol.values(), 1e-6));
        assert!(sol.objective() >= optimal.objective() - 1e-9);
    }

    #[test]
    fn pre_cancelled_token_interrupts_before_any_node() {
        // Through the default (presolve) path: the token installed in the
        // outer config must reach the reduced model's search.
        let (m, _) = deep_model();
        let token = CancelToken::new();
        token.cancel();
        let config = SolverConfig::exact().with_cancel(token);
        let sol = m.solve(&config).expect("solve");
        assert_eq!(sol.status(), Status::Interrupted);
        assert_eq!(sol.stats().nodes, 0);
    }

    #[test]
    fn expired_deadline_returns_without_descending_past_the_root() {
        let (m, warm) = deep_model();
        let config = SolverConfig::exact()
            .with_presolve(false)
            .with_cuts(false)
            .with_budget(Budget::unlimited().with_deadline(Instant::now()))
            .with_initial_solution(warm.clone());
        let sol = m.solve(&config).expect("solve");
        // The warm incumbent is kept, but the tree is never entered: no
        // nodes, no LPs, no cut rounds.
        assert_eq!(sol.stats().nodes, 0);
        assert_eq!(sol.stats().lp_solves, 0);
        assert_eq!(sol.stats().cuts, 0);
        assert!(sol.stats().limit_reached);
        assert_eq!(sol.status(), Status::Feasible);
        assert_eq!(sol.values(), &warm[..]);

        // Without a warm start nothing is known at all.
        let bare = SolverConfig::exact()
            .with_presolve(false)
            .with_cuts(false)
            .with_budget(Budget::unlimited().with_deadline(Instant::now()));
        let sol = m.solve(&bare).expect("solve");
        assert_eq!(sol.stats().nodes, 0);
        assert_eq!(sol.status(), Status::Unknown);
    }

    #[test]
    fn maximisation_sign_handling_in_stats() {
        let mut m = Model::new("max");
        let x = m.add_binary("x");
        m.set_objective([(x, 10.0)], Sense::Maximize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() - 10.0).abs() < 1e-9);
        assert!((sol.stats().best_bound - 10.0).abs() < 1e-6);
    }
}
