//! Branch-and-bound solver for mixed 0-1 / integer linear programs.
//!
//! The solver explores a binary search tree over the integral variables. At
//! every node it runs bound propagation, computes a dual (lower) bound —
//! either from the LP relaxation, from the objective over the propagated box,
//! or a depth-dependent hybrid of the two — and prunes nodes that cannot beat
//! the incumbent. A greedy propagation-repaired dive supplies an early
//! incumbent, which matters a great deal for the highly constrained BIST
//! assignment models this crate was written for.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::cuts::{CutGenerator, CutRow};
use crate::error::IlpError;
use crate::heuristics::{greedy_dive, round_and_repair};
use crate::model::{CmpOp, Model, Sense};
use crate::propagate::{Domains, PropagationResult, Propagator};
use crate::simplex::{solve_lp, LpStatus};
use crate::solution::{Solution, SolveStats, Status};
use crate::sparse::SparseModel;
use crate::{EPS, INT_EPS};

/// Maximum separation rounds at the root node.
const ROOT_CUT_ROUNDS: usize = 4;
/// Maximum in-tree separation passes (re-checks at improved incumbents).
const TREE_SEPARATIONS: usize = 6;
/// Maximum cuts accepted per separation call.
const CUTS_PER_ROUND: usize = 24;

/// One materialised row handed to [`SparseModel::from_rows`].
type DenseRow = (Vec<(usize, f64)>, CmpOp, f64);

/// How dual bounds are computed at branch-and-bound nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundMode {
    /// Objective bound over the propagated variable box only. Cheapest, and
    /// surprisingly effective on the assignment-heavy BIST models, but the
    /// weakest bound.
    Propagation,
    /// Solve the LP relaxation at every node. Strongest bound, most work.
    LpRelaxation,
    /// Solve the LP relaxation at nodes of depth `lp_depth` or shallower and
    /// fall back to the propagation bound deeper in the tree.
    Hybrid {
        /// Maximum depth at which the LP relaxation is still solved.
        lp_depth: usize,
    },
}

/// Variable selection strategy for branching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branching {
    /// Branch on the first unfixed integral variable (model order).
    InputOrder,
    /// Branch on the unfixed integral variable that appears in the largest
    /// number of constraints.
    MostConstrained,
    /// Branch on the variable whose LP relaxation value is most fractional;
    /// falls back to [`Branching::MostConstrained`] when no LP value is
    /// available at the node.
    MostFractional,
}

/// Node exploration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchOrder {
    /// Depth-first (default): finds feasible solutions quickly and keeps the
    /// open-node set small.
    DepthFirst,
    /// Best-bound-first: explores the node with the smallest dual bound
    /// first; proves optimality with fewer nodes at the price of memory.
    BestFirst,
}

/// Configuration of a branch-and-bound run.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Wall-clock limit. `None` means unlimited.
    pub time_limit: Option<Duration>,
    /// Maximum number of explored nodes. `None` means unlimited.
    pub node_limit: Option<u64>,
    /// Dual bound computation mode.
    pub bound_mode: BoundMode,
    /// Branching variable selection.
    pub branching: Branching,
    /// Node exploration order.
    pub search: SearchOrder,
    /// Stop as soon as the relative gap drops below this value.
    pub gap_tolerance: f64,
    /// Pivot budget per LP relaxation solve.
    pub max_lp_pivots: u64,
    /// Run the greedy dive heuristic before the tree search.
    pub dive_heuristic: bool,
    /// Optional warm-start assignment; used as the initial incumbent when it
    /// is feasible for the model.
    pub initial_solution: Option<Vec<f64>>,
    /// Additional warm-start candidates. Every feasible candidate competes
    /// for the initial incumbent and the best one wins; the synthesis engine
    /// uses this to chain the k−1 sweep incumbent alongside the sequential
    /// baseline design.
    pub initial_solutions: Vec<Vec<f64>>,
    /// Run the reducing presolve pipeline ([`crate::reduce`]) and solve the
    /// reduced model instead of the raw one (solutions are lifted back
    /// transparently). On by default.
    pub presolve: bool,
    /// Seed a cut pool with knapsack-cover and clique cuts
    /// ([`crate::cuts`]), separated at the root and re-checked at improved
    /// incumbents. On by default. Has no effect under
    /// [`BoundMode::Propagation`], which never produces the LP points
    /// separation needs.
    pub cuts: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            time_limit: Some(Duration::from_secs(60)),
            node_limit: None,
            bound_mode: BoundMode::Hybrid { lp_depth: 4 },
            branching: Branching::MostConstrained,
            search: SearchOrder::DepthFirst,
            gap_tolerance: 1e-9,
            max_lp_pivots: 50_000,
            dive_heuristic: true,
            initial_solution: None,
            initial_solutions: Vec::new(),
            presolve: true,
            cuts: true,
        }
    }
}

impl SolverConfig {
    /// A configuration tuned for exhaustive solving of small models in tests:
    /// no time limit, LP relaxation bound everywhere.
    pub fn exact() -> Self {
        Self {
            time_limit: None,
            bound_mode: BoundMode::LpRelaxation,
            ..Self::default()
        }
    }

    /// A cheap configuration for large models: propagation bounds only and
    /// the given wall-clock budget.
    pub fn time_boxed(limit: Duration) -> Self {
        Self {
            time_limit: Some(limit),
            bound_mode: BoundMode::Propagation,
            ..Self::default()
        }
    }

    /// Builder-style setter for the time limit.
    pub fn with_time_limit(mut self, limit: Option<Duration>) -> Self {
        self.time_limit = limit;
        self
    }

    /// Builder-style setter for the bound mode.
    pub fn with_bound_mode(mut self, mode: BoundMode) -> Self {
        self.bound_mode = mode;
        self
    }

    /// Builder-style setter for the branching rule.
    pub fn with_branching(mut self, branching: Branching) -> Self {
        self.branching = branching;
        self
    }

    /// Builder-style setter for the search order.
    pub fn with_search(mut self, search: SearchOrder) -> Self {
        self.search = search;
        self
    }

    /// Builder-style setter for a warm-start assignment.
    pub fn with_initial_solution(mut self, values: Vec<f64>) -> Self {
        self.initial_solution = Some(values);
        self
    }

    /// Builder-style addition of a warm-start candidate (see
    /// [`SolverConfig::initial_solutions`]).
    pub fn with_warm_candidate(mut self, values: Vec<f64>) -> Self {
        self.initial_solutions.push(values);
        self
    }

    /// Builder-style toggle for the reducing presolve.
    pub fn with_presolve(mut self, enabled: bool) -> Self {
        self.presolve = enabled;
        self
    }

    /// Builder-style toggle for the cut pool.
    pub fn with_cuts(mut self, enabled: bool) -> Self {
        self.cuts = enabled;
        self
    }
}

/// A branch-and-bound node.
#[derive(Debug, Clone)]
struct Node {
    domains: Domains,
    depth: usize,
    /// Dual bound inherited from the parent (minimisation objective).
    bound: f64,
    /// The variable whose bounds were tightened to create this node. The
    /// parent's domains were at a propagation fixpoint, so the child's
    /// propagation can be seeded with just this variable's rows.
    branched: Option<usize>,
}

/// Wrapper giving the binary heap min-heap semantics on the node bound.
struct HeapNode(Node);

impl PartialEq for HeapNode {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound
    }
}
impl Eq for HeapNode {}
impl PartialOrd for HeapNode {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapNode {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: smaller bound = higher priority.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

enum Frontier {
    Stack(Vec<Node>),
    Heap(BinaryHeap<HeapNode>),
}

impl Frontier {
    fn new(order: SearchOrder) -> Self {
        match order {
            SearchOrder::DepthFirst => Frontier::Stack(Vec::new()),
            SearchOrder::BestFirst => Frontier::Heap(BinaryHeap::new()),
        }
    }
    fn push(&mut self, node: Node) {
        match self {
            Frontier::Stack(s) => s.push(node),
            Frontier::Heap(h) => h.push(HeapNode(node)),
        }
    }
    fn pop(&mut self) -> Option<Node> {
        match self {
            Frontier::Stack(s) => s.pop(),
            Frontier::Heap(h) => h.pop().map(|n| n.0),
        }
    }
    fn min_bound(&self) -> Option<f64> {
        match self {
            Frontier::Stack(s) => s
                .iter()
                .map(|n| n.bound)
                .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)),
            Frontier::Heap(h) => h.peek().map(|n| n.0.bound),
        }
    }
    fn is_empty(&self) -> bool {
        match self {
            Frontier::Stack(s) => s.is_empty(),
            Frontier::Heap(h) => h.is_empty(),
        }
    }
}

/// The branch-and-bound engine. Construct with [`BranchAndBound::new`] and
/// call [`BranchAndBound::run`]; most users go through [`Model::solve`].
pub struct BranchAndBound<'a> {
    model: &'a Model,
    config: SolverConfig,
    propagator: Propagator,
    /// Minimisation objective coefficients (sign-flipped for maximisation).
    objective: Vec<f64>,
    objective_constant: f64,
    sense_factor: f64,
    occurrence: Vec<usize>,
    /// Cut pool: the generator mines the model once, `cut_rows` holds every
    /// accepted cut. The rows live in the shared sparse matrix, so the
    /// propagator, the simplex and the branching rules consume them exactly
    /// like model rows.
    cut_source: Option<CutGenerator>,
    cut_rows: Vec<CutRow>,
    /// Remaining in-tree separation passes (re-checks at improved
    /// incumbents).
    tree_separations_left: usize,
    /// The last root LP solved by the cut loop, valid for the *current*
    /// matrix; the root node consumes it instead of re-solving the most
    /// expensive LP of the tree.
    root_lp_cache: Option<(f64, Vec<f64>)>,
}

impl<'a> BranchAndBound<'a> {
    /// Prepares a solver run for `model`.
    pub fn new(model: &'a Model, config: SolverConfig) -> Self {
        let propagator = Propagator::new(model);
        let sense_factor = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        let objective: Vec<f64> = model
            .vars()
            .iter()
            .map(|v| sense_factor * v.objective)
            .collect();
        let objective_constant = sense_factor * model.objective().offset();
        let occurrence: Vec<usize> = (0..model.num_vars())
            .map(|j| propagator.matrix().occurrences(j))
            .collect();
        let cut_source = if config.cuts && model.num_integral() > 0 {
            let generator = CutGenerator::new(model);
            generator.has_sources().then_some(generator)
        } else {
            None
        };
        Self {
            model,
            config,
            propagator,
            objective,
            objective_constant,
            sense_factor,
            occurrence,
            cut_source,
            cut_rows: Vec::new(),
            tree_separations_left: TREE_SEPARATIONS,
            root_lp_cache: None,
        }
    }

    /// Rebuilds the shared sparse matrix from the model rows plus every
    /// accepted cut, and refreshes the occurrence counts the branching rules
    /// read. Called whenever the cut pool grows.
    fn rebuild_matrix(&mut self) {
        let rows: Vec<DenseRow> = self
            .model
            .constraints()
            .iter()
            .map(|c| {
                (
                    c.expr.iter().map(|(v, a)| (v.index(), a)).collect(),
                    c.op,
                    c.rhs,
                )
            })
            .chain(
                self.cut_rows
                    .iter()
                    .map(|cut| (cut.terms.clone(), CmpOp::Le, cut.rhs)),
            )
            .collect();
        self.propagator =
            Propagator::from_matrix(SparseModel::from_rows(self.model.num_vars(), rows));
        for (j, slot) in self.occurrence.iter_mut().enumerate() {
            *slot = self.propagator.matrix().occurrences(j);
        }
    }

    /// Separates cuts violated by `lp_values`, installs them in the row set
    /// and re-propagates `domains`. Returns `false` when the tightened row
    /// set proves the box empty.
    fn install_cuts(
        &mut self,
        lp_values: &[f64],
        domains: &mut Domains,
        stats: &mut SolveStats,
    ) -> Option<bool> {
        let generator = self.cut_source.as_mut()?;
        let new_cuts = generator.separate(lp_values, CUTS_PER_ROUND);
        if new_cuts.is_empty() {
            return None;
        }
        stats.cuts += new_cuts.len() as u64;
        self.cut_rows.extend(new_cuts);
        self.rebuild_matrix();
        stats.propagations += 1;
        Some(self.propagator.propagate(domains) != PropagationResult::Infeasible)
    }

    /// Root cut loop: solve the root LP, separate violated covers/cliques,
    /// tighten and repeat. Returns `false` when the root becomes infeasible
    /// (only possible numerically, since cuts preserve every integer point).
    fn root_cuts(
        &mut self,
        domains: &mut Domains,
        stats: &mut SolveStats,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        start: Instant,
    ) -> bool {
        for _ in 0..ROOT_CUT_ROUNDS {
            let lp = solve_lp(
                self.propagator.matrix(),
                &self.objective,
                self.objective_constant,
                domains,
                self.config.max_lp_pivots,
            );
            stats.lp_solves += 1;
            stats.lp_pivots += lp.pivots;
            match lp.status {
                LpStatus::Infeasible => return false,
                LpStatus::Optimal => {}
                LpStatus::Unbounded | LpStatus::IterationLimit => return true,
            }
            // An integral root relaxation is a solved instance: log it as an
            // incumbent improvement and stop separating.
            if self.try_integral_incumbent(&lp.values, domains, incumbent, stats, start) {
                self.root_lp_cache = Some((lp.objective, lp.values));
                return true;
            }
            match self.install_cuts(&lp.values, domains, stats) {
                None => {
                    // No violated cuts: this LP is valid for the final row
                    // set, so hand it to the root node instead of having it
                    // re-solve the identical relaxation.
                    self.root_lp_cache = Some((lp.objective, lp.values));
                    return true;
                }
                Some(true) => {}
                Some(false) => return false,
            }
        }
        true
    }

    /// If `values` is integral over the box, round it, check feasibility and
    /// update the incumbent. Returns whether the point was integral.
    fn try_integral_incumbent(
        &self,
        lp_values: &[f64],
        domains: &Domains,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        stats: &mut SolveStats,
        start: Instant,
    ) -> bool {
        let integral = (0..domains.len()).all(|j| {
            !domains.is_integral(j) || (lp_values[j] - lp_values[j].round()).abs() <= INT_EPS
        });
        if !integral {
            return false;
        }
        let mut values = lp_values.to_vec();
        for (j, v) in values.iter_mut().enumerate() {
            if domains.is_integral(j) {
                *v = v.round();
            }
        }
        if self.model.is_feasible(&values, 1e-6) {
            let obj = self.internal_objective(&values);
            if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                *incumbent = Some((obj, values));
                self.record_improvement(stats, start, obj);
            }
        }
        true
    }

    /// Runs the search and returns the best solution found.
    ///
    /// # Errors
    ///
    /// Only structural errors are reported as `Err`; infeasibility and limit
    /// expiry are encoded in the returned [`Status`].
    pub fn run(mut self) -> Result<Solution, IlpError> {
        let start = Instant::now();
        let mut stats = SolveStats::default();

        let mut root = Domains::from_model(self.model);
        stats.propagations += 1;
        if self.propagator.propagate(&mut root) == PropagationResult::Infeasible {
            stats.time = start.elapsed();
            stats.best_bound = f64::INFINITY;
            return Ok(Solution::without_values(Status::Infeasible, stats));
        }

        // Incumbent: (internal minimisation objective, values). All supplied
        // warm-start candidates compete; the cheapest feasible one wins.
        let mut incumbent: Option<(f64, Vec<f64>)> = None;

        for warm in self
            .config
            .initial_solution
            .iter()
            .chain(self.config.initial_solutions.iter())
        {
            if self.model.is_feasible(warm, 1e-6) {
                let obj = self.internal_objective(warm);
                if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                    incumbent = Some((obj, warm.clone()));
                    self.record_improvement(&mut stats, start, obj);
                }
            }
        }

        if self.config.dive_heuristic {
            if let Some(values) = greedy_dive(&self.propagator, &root, &self.objective) {
                if self.model.is_feasible(&values, 1e-6) {
                    let obj = self.internal_objective(&values);
                    if incumbent.as_ref().map(|(b, _)| obj < *b).unwrap_or(true) {
                        incumbent = Some((obj, values));
                        self.record_improvement(&mut stats, start, obj);
                    }
                }
            }
        }

        // Pure LP case: no integral variables at all.
        if self.model.num_integral() == 0 {
            return Ok(self.solve_pure_lp(&root, start, stats, incumbent));
        }

        // Seed the cut pool at the root: separate covers/cliques against the
        // root LP, tighten, repeat. The accepted cuts join the shared row set
        // for the whole search. Propagation-only runs skip this — their
        // point is to avoid the simplex, and without LP points neither the
        // root loop nor the in-tree re-checks could separate anything.
        let mut root_closed = false;
        if self.cut_source.is_some()
            && self.use_lp_at(0)
            && !self.root_cuts(&mut root, &mut stats, &mut incumbent, start)
        {
            // Cuts preserve every integer point, so an empty root box means
            // the model has no integer solution (modulo numerics, in which
            // case the incumbent already in hand is the answer).
            root_closed = true;
        }

        let mut frontier = Frontier::new(self.config.search);
        if !root_closed {
            frontier.push(Node {
                domains: root,
                depth: 0,
                bound: f64::NEG_INFINITY,
                branched: None,
            });
        }

        let mut limit_reached = false;
        let mut root_bound = f64::NEG_INFINITY;
        let mut pruned_bound_min = f64::INFINITY;

        while let Some(mut node) = frontier.pop() {
            if self.limits_exceeded(start, &stats) {
                limit_reached = true;
                // The popped node is still open.
                pruned_bound_min = pruned_bound_min.min(node.bound);
                break;
            }
            stats.nodes += 1;

            stats.propagations += 1;
            // The parent's domains were propagated to fixpoint, so only the
            // rows of the just-branched variable can fire initially.
            let propagated = match node.branched {
                Some(j) => self.propagator.propagate_seeded(&mut node.domains, &[j]),
                None => self.propagator.propagate(&mut node.domains),
            };
            if propagated == PropagationResult::Infeasible {
                continue;
            }

            let incumbent_obj = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
            let bound =
                match self.node_bound(&node, &mut stats, incumbent_obj, &mut incumbent, start) {
                    NodeBound::Infeasible => continue,
                    NodeBound::Bound { value, lp_values } => {
                        node.bound = value;
                        if node.depth == 0 {
                            root_bound = value;
                        }
                        if value >= incumbent_obj - EPS {
                            pruned_bound_min = pruned_bound_min.min(value);
                            continue;
                        }
                        lp_values
                    }
                };

            // Re-check the cut pool whenever the incumbent improved at this
            // node: the new incumbent's neighbourhood is where violated
            // covers/cliques are most likely to tighten the remaining tree.
            let improved =
                incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY) < incumbent_obj - EPS;
            if improved && self.tree_separations_left > 0 && self.cut_source.is_some() {
                if let Some(values) = bound.as_deref() {
                    self.tree_separations_left -= 1;
                    if self.install_cuts(values, &mut node.domains, &mut stats) == Some(false) {
                        continue;
                    }
                }
            }

            if node.domains.all_integral_fixed() {
                if let Some(values) = self.complete_assignment(&node.domains, &mut stats) {
                    if self.model.is_feasible(&values, 1e-6) {
                        let obj = self.internal_objective(&values);
                        if obj < incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY) {
                            incumbent = Some((obj, values));
                            self.record_improvement(&mut stats, start, obj);
                        }
                    }
                }
                continue;
            }

            let branch_var = self.select_branch_var(&node.domains, bound.as_deref());
            let Some(j) = branch_var else {
                continue;
            };
            self.push_children(&mut frontier, &node, j, bound.as_deref());
        }

        if !frontier.is_empty() {
            limit_reached = true;
        }

        // Final bound and gap bookkeeping.
        let open_min = frontier.min_bound().unwrap_or(f64::INFINITY);
        let best_bound_internal = if limit_reached {
            open_min
                .min(pruned_bound_min)
                .min(incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY))
                .max(root_bound.min(open_min))
        } else {
            incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY)
        };

        stats.time = start.elapsed();
        stats.limit_reached = limit_reached;
        stats.best_bound = self.sense_factor * best_bound_internal;

        match incumbent {
            Some((obj, values)) => {
                let status = if limit_reached {
                    Status::Feasible
                } else {
                    Status::Optimal
                };
                stats.gap = if status == Status::Optimal {
                    0.0
                } else {
                    ((obj - best_bound_internal).max(0.0)) / obj.abs().max(1.0)
                };
                let external_obj = self.sense_factor * obj;
                Ok(Solution::new(status, values, external_obj, stats))
            }
            None => {
                let status = if limit_reached {
                    Status::Unknown
                } else {
                    Status::Infeasible
                };
                stats.gap = f64::INFINITY;
                Ok(Solution::without_values(status, stats))
            }
        }
    }

    fn solve_pure_lp(
        &self,
        root: &Domains,
        start: Instant,
        mut stats: SolveStats,
        incumbent: Option<(f64, Vec<f64>)>,
    ) -> Solution {
        let lp = solve_lp(
            self.propagator.matrix(),
            &self.objective,
            self.objective_constant,
            root,
            self.config.max_lp_pivots,
        );
        stats.lp_solves += 1;
        stats.lp_pivots += lp.pivots;
        stats.time = start.elapsed();
        match lp.status {
            LpStatus::Optimal => {
                stats.best_bound = self.sense_factor * lp.objective;
                // The root relaxation *is* the solution here; log it as an
                // improvement so time-to-target metrics cover root-solved
                // instances, not only branched incumbents.
                let beats_warm = incumbent
                    .as_ref()
                    .map(|(b, _)| lp.objective < *b - EPS)
                    .unwrap_or(true);
                if beats_warm {
                    self.record_improvement(&mut stats, start, lp.objective);
                }
                Solution::new(
                    Status::Optimal,
                    lp.values,
                    self.sense_factor * lp.objective,
                    stats,
                )
            }
            LpStatus::Infeasible => Solution::without_values(Status::Infeasible, stats),
            LpStatus::Unbounded => Solution::without_values(Status::Unbounded, stats),
            LpStatus::IterationLimit => {
                stats.limit_reached = true;
                Solution::without_values(Status::Unknown, stats)
            }
        }
    }

    /// Logs an incumbent improvement (external objective sense) into the
    /// stats so callers can compute time-to-target metrics.
    fn record_improvement(&self, stats: &mut SolveStats, start: Instant, internal_obj: f64) {
        stats.improvements.push(crate::solution::Improvement {
            nodes: stats.nodes,
            seconds: start.elapsed().as_secs_f64(),
            objective: self.sense_factor * internal_obj,
        });
    }

    fn internal_objective(&self, values: &[f64]) -> f64 {
        self.objective_constant
            + self
                .objective
                .iter()
                .zip(values)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }

    fn limits_exceeded(&self, start: Instant, stats: &SolveStats) -> bool {
        if let Some(limit) = self.config.time_limit {
            if start.elapsed() >= limit {
                return true;
            }
        }
        if let Some(limit) = self.config.node_limit {
            if stats.nodes >= limit {
                return true;
            }
        }
        false
    }

    /// Objective bound over the box: every variable at its cheapest bound.
    fn propagation_bound(&self, domains: &Domains) -> f64 {
        let mut bound = self.objective_constant;
        for (j, &c) in self.objective.iter().enumerate() {
            bound += if c >= 0.0 {
                c * domains.lower(j)
            } else {
                c * domains.upper(j)
            };
        }
        bound
    }

    fn use_lp_at(&self, depth: usize) -> bool {
        match self.config.bound_mode {
            BoundMode::Propagation => false,
            BoundMode::LpRelaxation => true,
            BoundMode::Hybrid { lp_depth } => depth <= lp_depth,
        }
    }

    fn node_bound(
        &mut self,
        node: &Node,
        stats: &mut SolveStats,
        incumbent_obj: f64,
        incumbent: &mut Option<(f64, Vec<f64>)>,
        start: Instant,
    ) -> NodeBound {
        let prop_bound = self.propagation_bound(&node.domains);
        if !self.use_lp_at(node.depth) {
            return NodeBound::Bound {
                value: prop_bound,
                lp_values: None,
            };
        }
        // The root cut loop may already have solved this exact relaxation;
        // consume its result instead of repeating the most expensive LP of
        // the tree.
        let cached = if node.depth == 0 {
            self.root_lp_cache.take()
        } else {
            None
        };
        let (lp_objective, lp_values) = match cached {
            Some((objective, values)) => (objective, values),
            None => {
                let lp = solve_lp(
                    self.propagator.matrix(),
                    &self.objective,
                    self.objective_constant,
                    &node.domains,
                    self.config.max_lp_pivots,
                );
                stats.lp_solves += 1;
                stats.lp_pivots += lp.pivots;
                match lp.status {
                    LpStatus::Infeasible => return NodeBound::Infeasible,
                    LpStatus::Optimal => (lp.objective, lp.values),
                    LpStatus::Unbounded | LpStatus::IterationLimit => {
                        return NodeBound::Bound {
                            value: prop_bound,
                            lp_values: None,
                        }
                    }
                }
            }
        };
        // If the relaxation happens to be integral it is a feasible MILP
        // solution; use it to tighten the incumbent.
        let integral = (0..node.domains.len()).all(|j| {
            !node.domains.is_integral(j) || (lp_values[j] - lp_values[j].round()).abs() <= INT_EPS
        });
        if integral {
            let mut values = lp_values.clone();
            for (j, v) in values.iter_mut().enumerate() {
                if node.domains.is_integral(j) {
                    *v = v.round();
                }
            }
            if self.model.is_feasible(&values, 1e-6) {
                let obj = self.internal_objective(&values);
                if obj < incumbent_obj {
                    *incumbent = Some((obj, values));
                    self.record_improvement(stats, start, obj);
                }
            }
        } else if node.depth <= 2 {
            // Try an LP-guided rounding heuristic near the top of the tree,
            // where it is most likely to pay off.
            if let Some(values) =
                round_and_repair(&self.propagator, &node.domains, &lp_values, &self.objective)
            {
                if self.model.is_feasible(&values, 1e-6) {
                    let obj = self.internal_objective(&values);
                    let current = incumbent.as_ref().map(|(b, _)| *b).unwrap_or(f64::INFINITY);
                    if obj < current {
                        *incumbent = Some((obj, values));
                        self.record_improvement(stats, start, obj);
                    }
                }
            }
        }
        NodeBound::Bound {
            value: lp_objective.max(prop_bound),
            lp_values: Some(lp_values),
        }
    }

    fn complete_assignment(&self, domains: &Domains, stats: &mut SolveStats) -> Option<Vec<f64>> {
        let has_free_continuous =
            (0..domains.len()).any(|j| !domains.is_integral(j) && !domains.is_fixed(j));
        if !has_free_continuous {
            return Some(domains.assignment());
        }
        // Optimise the remaining continuous variables with the integral part
        // fixed.
        let lp = solve_lp(
            self.propagator.matrix(),
            &self.objective,
            self.objective_constant,
            domains,
            self.config.max_lp_pivots,
        );
        stats.lp_solves += 1;
        stats.lp_pivots += lp.pivots;
        match lp.status {
            LpStatus::Optimal => Some(lp.values),
            _ => None,
        }
    }

    fn select_branch_var(&self, domains: &Domains, lp_values: Option<&[f64]>) -> Option<usize> {
        let candidates: Vec<usize> = (0..domains.len())
            .filter(|&j| domains.is_integral(j) && !domains.is_fixed(j))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        match self.config.branching {
            Branching::InputOrder => candidates.first().copied(),
            Branching::MostConstrained => candidates
                .iter()
                .copied()
                .max_by_key(|&j| (self.occurrence[j], usize::MAX - j)),
            Branching::MostFractional => {
                if let Some(values) = lp_values {
                    let most = candidates
                        .iter()
                        .copied()
                        .map(|j| {
                            let frac = (values[j] - values[j].round()).abs();
                            (j, frac)
                        })
                        .filter(|(_, frac)| *frac > INT_EPS)
                        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                    if let Some((j, _)) = most {
                        return Some(j);
                    }
                }
                candidates
                    .iter()
                    .copied()
                    .max_by_key(|&j| (self.occurrence[j], usize::MAX - j))
            }
        }
    }

    fn push_children(
        &self,
        frontier: &mut Frontier,
        node: &Node,
        j: usize,
        lp_values: Option<&[f64]>,
    ) {
        let lower = node.domains.lower(j);
        let upper = node.domains.upper(j);
        debug_assert!(upper > lower + EPS);

        if upper - lower <= 1.0 + EPS {
            // Binary-style split: fix to each bound. Push the preferred value
            // last so depth-first search explores it first.
            let preferred = if let Some(values) = lp_values {
                if values[j] >= 0.5 * (lower + upper) {
                    upper
                } else {
                    lower
                }
            } else if self.objective[j] >= 0.0 {
                lower
            } else {
                upper
            };
            let other = if (preferred - lower).abs() < EPS {
                upper
            } else {
                lower
            };
            for value in [other, preferred] {
                let mut domains = node.domains.clone();
                if domains.fix(j, value) {
                    frontier.push(Node {
                        domains,
                        depth: node.depth + 1,
                        bound: node.bound,
                        branched: Some(j),
                    });
                }
            }
        } else {
            // Interval split around the LP value or the midpoint.
            let pivot = lp_values
                .map(|v| v[j])
                .unwrap_or_else(|| 0.5 * (lower + upper));
            let split = pivot.floor().clamp(lower, upper - 1.0);
            let mut down = node.domains.clone();
            down.tighten_upper(j, split);
            let mut up = node.domains.clone();
            up.tighten_lower(j, split + 1.0);
            for domains in [up, down] {
                if !domains.is_infeasible() {
                    frontier.push(Node {
                        domains,
                        depth: node.depth + 1,
                        bound: node.bound,
                        branched: Some(j),
                    });
                }
            }
        }
    }
}

enum NodeBound {
    Infeasible,
    Bound {
        value: f64,
        lp_values: Option<Vec<f64>>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn exact_configs() -> Vec<SolverConfig> {
        vec![
            SolverConfig::exact(),
            SolverConfig::exact().with_bound_mode(BoundMode::Propagation),
            SolverConfig::exact()
                .with_bound_mode(BoundMode::Hybrid { lp_depth: 2 })
                .with_branching(Branching::MostFractional),
            SolverConfig::exact().with_search(SearchOrder::BestFirst),
            SolverConfig::exact().with_branching(Branching::InputOrder),
        ]
    }

    #[test]
    fn knapsack_is_solved_optimally_by_all_strategies() {
        // max 6a + 5b + 4c  s.t. 3a + 2b + 2c <= 4 => best is b + c = 9.
        let mut m = Model::new("knap");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)], Sense::Maximize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal(), "config {config:?}");
            assert!((sol.objective() - 9.0).abs() < 1e-6, "config {config:?}");
            assert!(!sol.is_one(a));
            assert!(sol.is_one(b));
            assert!(sol.is_one(c));
        }
    }

    #[test]
    fn set_cover_minimisation() {
        // Cover {1,2,3} with sets A={1,2}(3), B={2,3}(3), C={1,3}(3), D={1,2,3}(5).
        // Optimal: D alone costs 5, any two of A/B/C cost 6 => D wins.
        let mut m = Model::new("cover");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        let d = m.add_binary("d");
        m.add_geq([(a, 1.0), (c, 1.0), (d, 1.0)], 1.0, "e1");
        m.add_geq([(a, 1.0), (b, 1.0), (d, 1.0)], 1.0, "e2");
        m.add_geq([(b, 1.0), (c, 1.0), (d, 1.0)], 1.0, "e3");
        m.set_objective([(a, 3.0), (b, 3.0), (c, 3.0), (d, 5.0)], Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert!((sol.objective() - 5.0).abs() < 1e-6);
            assert!(sol.is_one(d));
        }
    }

    #[test]
    fn infeasible_model_is_detected() {
        let mut m = Model::new("bad");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 3.0, "impossible");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert_eq!(sol.status(), Status::Infeasible);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn equality_assignment_problem() {
        // 3 tasks, 3 machines, permutation with cost matrix; optimal = 1+2+1 = 4
        let costs = [[1.0, 4.0, 5.0], [3.0, 2.0, 7.0], [1.0, 3.0, 4.0]];
        // optimal assignment: t0->m0 (1), t1->m1 (2), t2->?? m2 (4) = 7
        // or t0->m2(5), t1->m1(2), t2->m0(1) = 8; or t0->m0(1), t1->m1(2), t2->m2(4)=7
        // best is 7.
        let mut m = Model::new("assign");
        let mut x = Vec::new();
        for t in 0..3 {
            let row: Vec<_> = (0..3).map(|j| m.add_binary(format!("x{t}{j}"))).collect();
            m.add_eq(
                row.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
                1.0,
                format!("task{t}"),
            );
            x.push(row);
        }
        for j in 0..3 {
            m.add_leq(
                (0..3).map(|t| (x[t][j], 1.0)).collect::<Vec<_>>(),
                1.0,
                format!("mach{j}"),
            );
        }
        let obj: Vec<_> = (0..3)
            .flat_map(|t| (0..3).map(move |j| (t, j)))
            .map(|(t, j)| (x[t][j], costs[t][j]))
            .collect();
        m.set_objective(obj, Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert!(
                (sol.objective() - 7.0).abs() < 1e-6,
                "got {}",
                sol.objective()
            );
        }
    }

    #[test]
    fn general_integer_variables() {
        // min 3x + 2y  s.t.  x + y >= 7, x <= 4, y <= 5, x,y integer
        // best: x=2, y=5 -> 16.
        let mut m = Model::new("int");
        let x = m.add_integer("x", 0, 4);
        let y = m.add_integer("y", 0, 5);
        m.add_geq([(x, 1.0), (y, 1.0)], 7.0, "need");
        m.set_objective([(x, 3.0), (y, 2.0)], Sense::Minimize);
        for config in exact_configs() {
            let sol = m.solve(&config).expect("solve");
            assert!(sol.is_optimal());
            assert_eq!(sol.int_value(x), 2);
            assert_eq!(sol.int_value(y), 5);
            assert!((sol.objective() - 16.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mixed_integer_continuous() {
        // min y - x_c  s.t. x_c <= 2.5*y, x_c <= 1.7, y binary.
        // y=1, x_c=1.7 -> -0.7 ; y=0 -> 0. Optimal -0.7.
        let mut m = Model::new("mix");
        let y = m.add_binary("y");
        let xc = m.add_continuous("xc", 0.0, 1.7);
        m.add_leq([(xc, 1.0), (y, -2.5)], 0.0, "link");
        m.set_objective([(y, 1.0), (xc, -1.0)], Sense::Minimize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() + 0.7).abs() < 1e-6);
        assert!(sol.is_one(y));
        assert!((sol.value(xc) - 1.7).abs() < 1e-6);
    }

    #[test]
    fn warm_start_is_used() {
        let mut m = Model::new("warm");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 2.0)], Sense::Minimize);
        let config = SolverConfig::exact().with_initial_solution(vec![1.0, 0.0]);
        let sol = m.solve(&config).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_yields_feasible_or_unknown() {
        let mut m = Model::new("limited");
        let vars: Vec<_> = (0..30).map(|i| m.add_binary(format!("x{i}"))).collect();
        for w in vars.chunks(3) {
            m.add_geq(
                w.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
                1.0,
                "chunk",
            );
        }
        m.set_objective(
            vars.iter().map(|&v| (v, 1.0)).collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let config = SolverConfig {
            node_limit: Some(1),
            dive_heuristic: false,
            bound_mode: BoundMode::Propagation,
            ..SolverConfig::default()
        };
        let sol = m.solve(&config).expect("solve");
        assert!(matches!(sol.status(), Status::Feasible | Status::Unknown));
        assert!(sol.stats().limit_reached || sol.status() == Status::Feasible);
    }

    #[test]
    fn pure_lp_model() {
        let mut m = Model::new("lp");
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.add_leq([(x, 1.0), (y, 2.0)], 14.0, "a");
        m.add_leq([(x, 3.0), (y, -1.0)], 0.0, "b");
        m.set_objective([(x, 3.0), (y, 4.0)], Sense::Maximize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        // optimum at x=2, y=6 -> 30
        assert!(
            (sol.objective() - 30.0).abs() < 1e-5,
            "got {}",
            sol.objective()
        );
    }

    #[test]
    fn maximisation_sign_handling_in_stats() {
        let mut m = Model::new("max");
        let x = m.add_binary("x");
        m.set_objective([(x, 10.0)], Sense::Maximize);
        let sol = m.solve(&SolverConfig::exact()).expect("solve");
        assert!(sol.is_optimal());
        assert!((sol.objective() - 10.0).abs() < 1e-9);
        assert!((sol.stats().best_bound - 10.0).abs() < 1e-6);
    }
}
