//! Linear expressions over model variables.
//!
//! A [`LinExpr`] is a sparse linear form `Σ cᵢ·xᵢ + constant`. Expressions are
//! the currency used to state constraints and objectives; they can be built
//! incrementally, combined with `+` / `-`, and scaled by `f64` factors.

use crate::model::VarId;
use std::collections::BTreeMap;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A sparse linear expression `Σ cᵢ·xᵢ + constant`.
///
/// Duplicate variable terms are merged on construction, so the internal
/// representation always carries at most one coefficient per variable.
///
/// ```
/// use bist_ilp::{LinExpr, Model};
/// let mut m = Model::new("doc");
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let e = LinExpr::term(x, 2.0) + LinExpr::term(y, 3.0) + LinExpr::constant(1.0);
/// assert_eq!(e.coefficient(x), 2.0);
/// assert_eq!(e.offset(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// Creates the empty expression (value 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an expression consisting of a single term `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        let mut terms = BTreeMap::new();
        if coeff != 0.0 {
            terms.insert(var, coeff);
        }
        Self {
            terms,
            constant: 0.0,
        }
    }

    /// Creates a constant expression.
    pub fn constant(value: f64) -> Self {
        Self {
            terms: BTreeMap::new(),
            constant: value,
        }
    }

    /// Builds an expression from an iterator of `(variable, coefficient)`
    /// pairs; duplicate variables are summed.
    pub fn sum<I>(terms: I) -> Self
    where
        I: IntoIterator<Item = (VarId, f64)>,
    {
        let mut expr = Self::new();
        for (var, coeff) in terms {
            expr.add_term(var, coeff);
        }
        expr
    }

    /// Adds `coeff · var` to the expression in place.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < f64::EPSILON {
            self.terms.remove(&var);
        }
        self
    }

    /// Adds a constant offset in place.
    pub fn add_constant(&mut self, value: f64) -> &mut Self {
        self.constant += value;
        self
    }

    /// The coefficient of `var` (0 if the variable does not appear).
    pub fn coefficient(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset of the expression.
    pub fn offset(&self) -> f64 {
        self.constant
    }

    /// Number of variables with a non-zero coefficient.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(variable, coefficient)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.terms.iter().map(|(v, c)| (*v, *c))
    }

    /// Evaluates the expression for a dense assignment of variable values.
    ///
    /// # Panics
    ///
    /// Panics if a referenced variable index is out of range of `values`.
    pub fn evaluate(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Returns true if every coefficient and the constant are finite.
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }

    /// Largest variable index referenced, if any.
    pub fn max_var_index(&self) -> Option<usize> {
        self.terms.keys().next_back().map(|v| v.index())
    }

    /// Multiplies every coefficient and the constant by `factor` in place.
    pub fn scale(&mut self, factor: f64) -> &mut Self {
        for coeff in self.terms.values_mut() {
            *coeff *= factor;
        }
        self.constant *= factor;
        self.terms.retain(|_, c| c.abs() >= f64::EPSILON);
        self
    }
}

impl From<(VarId, f64)> for LinExpr {
    fn from((var, coeff): (VarId, f64)) -> Self {
        LinExpr::term(var, coeff)
    }
}

impl From<VarId> for LinExpr {
    fn from(var: VarId) -> Self {
        LinExpr::term(var, 1.0)
    }
}

impl<const N: usize> From<[(VarId, f64); N]> for LinExpr {
    fn from(terms: [(VarId, f64); N]) -> Self {
        LinExpr::sum(terms)
    }
}

impl From<Vec<(VarId, f64)>> for LinExpr {
    fn from(terms: Vec<(VarId, f64)>) -> Self {
        LinExpr::sum(terms)
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (var, coeff) in rhs.terms {
            self.add_term(var, coeff);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        for (var, coeff) in rhs.terms {
            self.add_term(var, -coeff);
        }
        self.constant -= rhs.constant;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        self.scale(-1.0);
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        self.scale(rhs);
        self
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (VarId, f64)>>(iter: T) -> Self {
        LinExpr::sum(iter)
    }
}

impl Extend<(VarId, f64)> for LinExpr {
    fn extend<T: IntoIterator<Item = (VarId, f64)>>(&mut self, iter: T) {
        for (var, coeff) in iter {
            self.add_term(var, coeff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn vars(n: usize) -> (Model, Vec<VarId>) {
        let mut m = Model::new("t");
        let vs = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
        (m, vs)
    }

    #[test]
    fn merging_duplicate_terms() {
        let (_m, v) = vars(2);
        let e = LinExpr::sum([(v[0], 1.0), (v[0], 2.0), (v[1], -1.0)]);
        assert_eq!(e.coefficient(v[0]), 3.0);
        assert_eq!(e.coefficient(v[1]), -1.0);
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let (_m, v) = vars(1);
        let e = LinExpr::sum([(v[0], 1.0), (v[0], -1.0)]);
        assert!(e.is_empty());
    }

    #[test]
    fn arithmetic_operators() {
        let (_m, v) = vars(3);
        let a = LinExpr::term(v[0], 1.0) + LinExpr::term(v[1], 2.0);
        let b = LinExpr::term(v[1], 1.0) + LinExpr::term(v[2], 4.0);
        let c = a.clone() - b.clone();
        assert_eq!(c.coefficient(v[0]), 1.0);
        assert_eq!(c.coefficient(v[1]), 1.0);
        assert_eq!(c.coefficient(v[2]), -4.0);
        let d = (a + b) * 2.0;
        assert_eq!(d.coefficient(v[1]), 6.0);
        let neg = -d;
        assert_eq!(neg.coefficient(v[2]), -8.0);
    }

    #[test]
    fn evaluation() {
        let (_m, v) = vars(3);
        let e = LinExpr::sum([(v[0], 2.0), (v[2], -3.0)]) + LinExpr::constant(5.0);
        assert_eq!(e.evaluate(&[1.0, 99.0, 2.0]), 2.0 - 6.0 + 5.0);
    }

    #[test]
    fn from_and_collect() {
        let (_m, v) = vars(2);
        let e: LinExpr = vec![(v[0], 1.0), (v[1], 1.0)].into_iter().collect();
        assert_eq!(e.len(), 2);
        let e2: LinExpr = v[0].into();
        assert_eq!(e2.coefficient(v[0]), 1.0);
    }

    #[test]
    fn finiteness_check() {
        let (_m, v) = vars(1);
        let e = LinExpr::term(v[0], f64::NAN);
        assert!(!e.is_finite());
        let e = LinExpr::term(v[0], 1.0);
        assert!(e.is_finite());
    }
}
