//! Serializable solve-state snapshots for resumable branch-and-bound.
//!
//! A [`SolveSnapshot`] is everything the [`crate::solver::BranchAndBound`]
//! search needs to *continue the same tree* in another process: the open-node
//! frontier (as per-node bound deltas against the model box), the incumbent,
//! the global-bound bookkeeping, the pseudo-cost tables, the accepted cut
//! pool, and the warm [`Basis`] eta files of the node-basis cache. Snapshots
//! are produced by an interrupted or limit-stopped solve when
//! [`crate::SolverConfig::snapshot`] is on, and consumed by
//! [`crate::SolverConfig::resume`] / [`crate::SolveSession::resume`].
//!
//! # Exactness
//!
//! Resuming must be **results-neutral**: a solve that runs `c` nodes, is
//! snapshotted, and resumes for the remaining budget must visit the same
//! nodes, find the same incumbents and prove the same objective as an
//! uninterrupted run (under the default deterministic depth-first order; the
//! best-first heap restores the same node *set* but may permute exact-tie
//! pops, which layout-dependent heap internals do not pin down). Every `f64`
//! is therefore serialized as its [`f64::to_bits`] integer through the
//! exact-integer [`crate::json`] layer — a decimal round-trip that moved a
//! bound by one ulp would change pruning decisions.
//!
//! # Validity
//!
//! A snapshot is only meaningful for the exact instance it was captured
//! from: it records the content fingerprint of the (possibly reduced)
//! matrix + objective it was solving, and the resume path rejects a
//! mismatch loudly ([`crate::IlpError::Snapshot`]) instead of silently
//! continuing a different tree. The solver *configuration* is not part of
//! the snapshot — resuming under a different bound mode or branching rule
//! is well-defined (the tree stays valid) but forfeits the
//! identical-to-uninterrupted guarantee; callers that need it (the job
//! service cache) key snapshots by configuration as well.

use std::fmt;

use crate::cuts::{CutKind, CutRow};
use crate::json::Value;
use crate::model::{Model, Sense};
use crate::simplex::{instance_fingerprint, Basis};
use crate::solver::SearchOrder;
use crate::sparse::SparseModel;

/// Content fingerprint of a model: a hash over the sparse constraint
/// matrix, the variable boxes and kinds, and the internal
/// (minimisation-sense) objective with its constant. Two models that are
/// structurally and numerically identical collide; a single changed
/// coefficient, bound, kind or objective weight separates them. This is
/// the identity the `advbist` job-service cache keys on. (It is *not* the
/// same hash a [`SolveSnapshot`] records — snapshots fingerprint the
/// possibly presolve-reduced instance the tree was actually built on.)
pub fn model_fingerprint(model: &Model) -> u64 {
    let sense_factor = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let objective: Vec<f64> = model
        .vars()
        .iter()
        .map(|v| sense_factor * v.objective)
        .collect();
    let matrix = SparseModel::from_model(model);
    let mut h = instance_fingerprint(
        &matrix,
        &objective,
        sense_factor * model.objective().offset(),
    );
    for var in model.vars() {
        crate::sparse::fnv_fold(&mut h, var.kind.lower().to_bits());
        crate::sparse::fnv_fold(&mut h, var.kind.upper().to_bits());
        crate::sparse::fnv_fold(&mut h, u64::from(var.kind.is_integral()));
    }
    h
}

/// Snapshot format version; bumped on any layout change so a stale file
/// fails loudly instead of deserializing garbage. Version 2 added the
/// Gomory / lifted-cover / no-good cut kinds, the `pending_cuts` batch, the
/// per-node `ng` (no-good learning allowed) flag and the `eager_separation`
/// schedule flag; version-1 documents (which cannot contain any of those)
/// still load, with an empty pending batch and the conservative defaults.
pub const FORMAT_VERSION: u64 = 2;

/// Oldest snapshot version the parser still accepts.
pub const MIN_FORMAT_VERSION: u64 = 1;

/// A malformed, inconsistent or incompatible snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// What went wrong.
    pub message: String,
}

impl SnapshotError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    pub(crate) fn field(key: &str) -> Self {
        Self::new(format!("missing or mistyped field `{key}`"))
    }
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid solve snapshot: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// Encoding helpers shared with `simplex::Basis`'s snapshot methods.
// ---------------------------------------------------------------------------

/// Encodes an `f64` as its exact bit pattern.
pub(crate) fn bits(f: f64) -> Value {
    Value::Int(f.to_bits())
}

/// Encodes a slice of `f64`s as an array of bit patterns.
pub(crate) fn bits_array(fs: &[f64]) -> Value {
    Value::Array(fs.iter().map(|&f| bits(f)).collect())
}

/// Reads an exact `u64` field.
pub(crate) fn get_u64(v: &Value, key: &str) -> Result<u64, SnapshotError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| SnapshotError::field(key))
}

/// Reads a `usize` field.
pub(crate) fn get_usize(v: &Value, key: &str) -> Result<usize, SnapshotError> {
    usize::try_from(get_u64(v, key)?).map_err(|_| SnapshotError::field(key))
}

/// Reads an `f64` field stored as its bit pattern.
pub(crate) fn get_f64_bits(v: &Value, key: &str) -> Result<f64, SnapshotError> {
    Ok(f64::from_bits(get_u64(v, key)?))
}

/// Reads an array field.
pub(crate) fn get_array<'v>(v: &'v Value, key: &str) -> Result<&'v [Value], SnapshotError> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| SnapshotError::field(key))
}

/// Decodes an array of bit-pattern `f64`s.
pub(crate) fn f64s_from(items: &[Value], key: &str) -> Result<Vec<f64>, SnapshotError> {
    items
        .iter()
        .map(|item| {
            item.as_u64()
                .map(f64::from_bits)
                .ok_or_else(|| SnapshotError::field(key))
        })
        .collect()
}

fn u64s_from(items: &[Value], key: &str) -> Result<Vec<u64>, SnapshotError> {
    items
        .iter()
        .map(|item| item.as_u64().ok_or_else(|| SnapshotError::field(key)))
        .collect()
}

fn opt_u64(v: Option<&Value>, key: &str) -> Result<Option<u64>, SnapshotError> {
    match v {
        None => Err(SnapshotError::field(key)),
        Some(Value::Null) => Ok(None),
        Some(value) => value
            .as_u64()
            .map(Some)
            .ok_or_else(|| SnapshotError::field(key)),
    }
}

fn get_bool(v: &Value, key: &str) -> Result<bool, SnapshotError> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| SnapshotError::field(key))
}

/// Encodes a cut pool (terms with bit-exact coefficients, rhs, kind tag).
fn cuts_value(cuts: &[CutRow]) -> Value {
    Value::Array(
        cuts.iter()
            .map(|cut| {
                Value::Object(vec![
                    (
                        "terms".into(),
                        Value::Array(
                            cut.terms
                                .iter()
                                .map(|&(j, a)| Value::Array(vec![Value::Int(j as u64), bits(a)]))
                                .collect(),
                        ),
                    ),
                    ("rhs".into(), bits(cut.rhs)),
                    (
                        "kind".into(),
                        Value::Str(
                            match cut.kind {
                                CutKind::Cover => "cover",
                                CutKind::Clique => "clique",
                                CutKind::Gomory => "gomory",
                                CutKind::LiftedCover => "lifted_cover",
                                CutKind::NoGood => "nogood",
                            }
                            .into(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

/// Decodes a cut pool serialized by [`cuts_value`].
fn cuts_from(items: &[Value]) -> Result<Vec<CutRow>, SnapshotError> {
    let mut cuts = Vec::new();
    for cut in items {
        let mut terms = Vec::new();
        for term in get_array(cut, "terms")? {
            match term.as_array() {
                Some([j, a]) => terms.push((
                    usize::try_from(j.as_u64().ok_or_else(|| SnapshotError::field("terms"))?)
                        .map_err(|_| SnapshotError::field("terms"))?,
                    f64::from_bits(a.as_u64().ok_or_else(|| SnapshotError::field("terms"))?),
                )),
                _ => return Err(SnapshotError::field("terms")),
            }
        }
        let kind = match cut.get("kind").and_then(Value::as_str) {
            Some("cover") => CutKind::Cover,
            Some("clique") => CutKind::Clique,
            Some("gomory") => CutKind::Gomory,
            Some("lifted_cover") => CutKind::LiftedCover,
            Some("nogood") => CutKind::NoGood,
            _ => return Err(SnapshotError::field("kind")),
        };
        cuts.push(CutRow {
            terms,
            rhs: get_f64_bits(cut, "rhs")?,
            kind,
        });
    }
    Ok(cuts)
}

// ---------------------------------------------------------------------------
// Snapshot data
// ---------------------------------------------------------------------------

/// One open node of the serialized frontier. Domains are stored as deltas
/// against the model's root box: only the `(variable, lower, upper)` triples
/// that differ (branching decisions, propagation tightenings, reduced-cost
/// fixings), which keeps deep-tree snapshots small.
#[derive(Debug, Clone)]
pub(crate) struct SnapshotNode {
    /// `(variable index, lower bits, upper bits)` for every bound that
    /// differs from the model box.
    pub(crate) deltas: Vec<(usize, f64, f64)>,
    pub(crate) depth: usize,
    pub(crate) bound: f64,
    pub(crate) branched: Option<usize>,
    pub(crate) parent_basis: Option<u64>,
    pub(crate) parent_bound_is_lp: bool,
    pub(crate) branch_up: bool,
    pub(crate) branch_step: f64,
    /// Whether the node's whole decision path consists of binary fixings
    /// untainted by incumbent-dependent (reduced-cost) tightenings — the
    /// eligibility condition for learning a globally valid no-good from an
    /// infeasibility refutation. Wire key `"ng"`; absent in v1 snapshots,
    /// which parse as `false` so restored v1 nodes never learn.
    pub(crate) nogood_ok: bool,
}

impl SnapshotNode {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "deltas".into(),
                Value::Array(
                    self.deltas
                        .iter()
                        .map(|&(j, lo, hi)| {
                            Value::Array(vec![Value::Int(j as u64), bits(lo), bits(hi)])
                        })
                        .collect(),
                ),
            ),
            ("depth".into(), Value::Int(self.depth as u64)),
            ("bound".into(), bits(self.bound)),
            (
                "branched".into(),
                match self.branched {
                    Some(j) => Value::Int(j as u64),
                    None => Value::Null,
                },
            ),
            (
                "parent_basis".into(),
                match self.parent_basis {
                    Some(k) => Value::Int(k),
                    None => Value::Null,
                },
            ),
            ("lp".into(), Value::Bool(self.parent_bound_is_lp)),
            ("up".into(), Value::Bool(self.branch_up)),
            ("step".into(), bits(self.branch_step)),
            ("ng".into(), Value::Bool(self.nogood_ok)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, SnapshotError> {
        let mut deltas = Vec::new();
        for item in get_array(v, "deltas")? {
            let triple = item
                .as_array()
                .ok_or_else(|| SnapshotError::field("deltas"))?;
            match triple {
                [j, lo, hi] => deltas.push((
                    usize::try_from(j.as_u64().ok_or_else(|| SnapshotError::field("deltas"))?)
                        .map_err(|_| SnapshotError::field("deltas"))?,
                    f64::from_bits(lo.as_u64().ok_or_else(|| SnapshotError::field("deltas"))?),
                    f64::from_bits(hi.as_u64().ok_or_else(|| SnapshotError::field("deltas"))?),
                )),
                _ => return Err(SnapshotError::field("deltas")),
            }
        }
        Ok(Self {
            deltas,
            depth: get_usize(v, "depth")?,
            bound: get_f64_bits(v, "bound")?,
            branched: opt_u64(v.get("branched"), "branched")?
                .map(|j| usize::try_from(j).map_err(|_| SnapshotError::field("branched")))
                .transpose()?,
            parent_basis: opt_u64(v.get("parent_basis"), "parent_basis")?,
            parent_bound_is_lp: get_bool(v, "lp")?,
            branch_up: get_bool(v, "up")?,
            branch_step: get_f64_bits(v, "step")?,
            nogood_ok: v.get("ng").and_then(Value::as_bool).unwrap_or(false),
        })
    }
}

/// The pseudo-cost tables of the branching rule at capture time.
#[derive(Debug, Clone, Default)]
pub(crate) struct PseudoSnapshot {
    pub(crate) up_sum: Vec<f64>,
    pub(crate) up_cnt: Vec<u32>,
    pub(crate) down_sum: Vec<f64>,
    pub(crate) down_cnt: Vec<u32>,
    pub(crate) global_sum: [f64; 2],
    pub(crate) global_cnt: [u32; 2],
}

impl PseudoSnapshot {
    fn to_value(&self) -> Value {
        let cnts = |c: &[u32]| Value::Array(c.iter().map(|&n| Value::Int(u64::from(n))).collect());
        Value::Object(vec![
            ("up_sum".into(), bits_array(&self.up_sum)),
            ("up_cnt".into(), cnts(&self.up_cnt)),
            ("down_sum".into(), bits_array(&self.down_sum)),
            ("down_cnt".into(), cnts(&self.down_cnt)),
            ("global_sum".into(), bits_array(&self.global_sum)),
            ("global_cnt".into(), cnts(&self.global_cnt)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, SnapshotError> {
        let cnts = |key: &str| -> Result<Vec<u32>, SnapshotError> {
            u64s_from(get_array(v, key)?, key)?
                .into_iter()
                .map(|n| u32::try_from(n).map_err(|_| SnapshotError::field("pseudo counts")))
                .collect()
        };
        let global_sum = f64s_from(get_array(v, "global_sum")?, "global_sum")?;
        let global_cnt = cnts("global_cnt")?;
        if global_sum.len() != 2 || global_cnt.len() != 2 {
            return Err(SnapshotError::field("pseudo globals"));
        }
        Ok(Self {
            up_sum: f64s_from(get_array(v, "up_sum")?, "up_sum")?,
            up_cnt: cnts("up_cnt")?,
            down_sum: f64s_from(get_array(v, "down_sum")?, "down_sum")?,
            down_cnt: cnts("down_cnt")?,
            global_sum: [global_sum[0], global_sum[1]],
            global_cnt: [global_cnt[0], global_cnt[1]],
        })
    }
}

/// The cut loop's cached root relaxation, if one was still pending for the
/// root node when the solve stopped (an interrupt before the first pop).
#[derive(Debug, Clone)]
pub(crate) struct RootLpSnapshot {
    pub(crate) objective: f64,
    pub(crate) values: Vec<f64>,
    /// `(up, down)` reduced-cost vectors, when the warm path produced them.
    pub(crate) reduced_costs: Option<(Vec<f64>, Vec<f64>)>,
    pub(crate) pivots: u64,
}

impl RootLpSnapshot {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("objective".into(), bits(self.objective)),
            ("values".into(), bits_array(&self.values)),
            (
                "rc_up".into(),
                match &self.reduced_costs {
                    Some((up, _)) => bits_array(up),
                    None => Value::Null,
                },
            ),
            (
                "rc_down".into(),
                match &self.reduced_costs {
                    Some((_, down)) => bits_array(down),
                    None => Value::Null,
                },
            ),
            ("pivots".into(), Value::Int(self.pivots)),
        ])
    }

    fn from_value(v: &Value) -> Result<Self, SnapshotError> {
        let reduced_costs = match (v.get("rc_up"), v.get("rc_down")) {
            (Some(Value::Null), Some(Value::Null)) => None,
            (Some(up), Some(down)) => Some((
                f64s_from(
                    up.as_array().ok_or_else(|| SnapshotError::field("rc_up"))?,
                    "rc_up",
                )?,
                f64s_from(
                    down.as_array()
                        .ok_or_else(|| SnapshotError::field("rc_down"))?,
                    "rc_down",
                )?,
            )),
            _ => return Err(SnapshotError::field("rc_up")),
        };
        Ok(Self {
            objective: get_f64_bits(v, "objective")?,
            values: f64s_from(get_array(v, "values")?, "values")?,
            reduced_costs,
            pivots: get_u64(v, "pivots")?,
        })
    }
}

/// A serializable checkpoint of an interrupted branch-and-bound search. See
/// the [module documentation](self) for the exactness and validity
/// contracts, and the repository README for the JSON shape.
#[derive(Debug, Clone)]
pub struct SolveSnapshot {
    /// Content fingerprint of the instance (pre-cut matrix + objective) the
    /// tree belongs to; checked on resume.
    pub(crate) fingerprint: u64,
    pub(crate) num_vars: usize,
    pub(crate) search: SearchOrder,
    /// Nodes explored when the snapshot was taken; the resumed run's node
    /// counter continues from here, so node budgets keep whole-tree
    /// semantics across interrupts.
    pub(crate) nodes: u64,
    /// Open nodes in pop order: the *last* entry is popped first under
    /// depth-first search (stack order is preserved verbatim).
    pub(crate) frontier: Vec<SnapshotNode>,
    /// Best incumbent at capture, as (internal minimisation objective,
    /// values).
    pub(crate) incumbent: Option<(f64, Vec<f64>)>,
    pub(crate) root_bound: f64,
    pub(crate) pruned_bound_min: f64,
    pub(crate) last_bound_emitted: f64,
    pub(crate) tree_separations_left: usize,
    /// Whether the captured search was separating shallow Gomory rounds
    /// eagerly (chained warm-started solves). Absent in v1 snapshots, where
    /// it defaults to `false` — the conservative late-separation schedule.
    pub(crate) eager_separation: bool,
    /// Accepted cut pool; reinstalled into the row set before the frontier
    /// is restored.
    pub(crate) cuts: Vec<CutRow>,
    /// Learned cuts (conflict no-goods) batched but not yet flushed into
    /// the row set when the solve stopped; the resumed search flushes them
    /// at the same deterministic trigger the uninterrupted run would have.
    pub(crate) pending_cuts: Vec<CutRow>,
    pub(crate) pseudo: PseudoSnapshot,
    /// Warm basis cache entries as `(cache key, basis)`, oldest first.
    pub(crate) bases: Vec<(u64, Basis)>,
    pub(crate) next_basis_key: u64,
    pub(crate) root_lp: Option<RootLpSnapshot>,
    pub(crate) root_basis_key: Option<u64>,
}

impl SolveSnapshot {
    /// Content fingerprint of the instance this snapshot belongs to (the
    /// same hash [`crate::model_fingerprint`] exposes at the model level,
    /// computed over the reduced model when presolve was on).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Nodes the captured search had explored.
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Open nodes in the serialized frontier.
    pub fn open_nodes(&self) -> usize {
        self.frontier.len()
    }

    /// Whether an incumbent assignment was in hand at capture.
    pub fn has_incumbent(&self) -> bool {
        self.incumbent.is_some()
    }

    /// Approximate in-memory footprint in bytes (used by the job-service
    /// cache's LRU accounting).
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self.frontier.iter().map(|n| 64 + 24 * n.deltas.len()).sum();
        let incumbent_bytes = self
            .incumbent
            .as_ref()
            .map_or(0, |(_, values)| 16 + 8 * values.len());
        let cut_bytes: usize = self
            .cuts
            .iter()
            .chain(&self.pending_cuts)
            .map(|c| 24 + 16 * c.terms.len())
            .sum();
        let pseudo_bytes = 12 * self.pseudo.up_sum.len() + 12 * self.pseudo.down_sum.len();
        let basis_bytes: usize = self.bases.iter().map(|(_, b)| 16 + 12 * b.cells()).sum();
        let root_lp_bytes = self.root_lp.as_ref().map_or(0, |lp| {
            8 * lp.values.len()
                + lp.reduced_costs
                    .as_ref()
                    .map_or(0, |(up, down)| 8 * (up.len() + down.len()))
        });
        128 + node_bytes + incumbent_bytes + cut_bytes + pseudo_bytes + basis_bytes + root_lp_bytes
    }

    /// Internal consistency check, run before serialization and after
    /// parsing, so a corrupt snapshot is rejected loudly at the boundary
    /// instead of crashing (or silently mis-resuming) inside the solver.
    fn validate(&self) -> Result<(), SnapshotError> {
        let n = self.num_vars;
        if n == 0 {
            return Err(SnapshotError::new("num_vars must be positive"));
        }
        for node in &self.frontier {
            if node.deltas.iter().any(|&(j, _, _)| j >= n) {
                return Err(SnapshotError::new("frontier delta variable out of range"));
            }
            if node.branched.is_some_and(|j| j >= n) {
                return Err(SnapshotError::new("branched variable out of range"));
            }
        }
        if let Some((_, values)) = &self.incumbent {
            if values.len() != n {
                return Err(SnapshotError::new("incumbent length mismatch"));
            }
        }
        if self.pseudo.up_sum.len() != n
            || self.pseudo.up_cnt.len() != n
            || self.pseudo.down_sum.len() != n
            || self.pseudo.down_cnt.len() != n
        {
            return Err(SnapshotError::new("pseudo-cost table length mismatch"));
        }
        for cut in self.cuts.iter().chain(&self.pending_cuts) {
            if cut.terms.iter().any(|&(j, _)| j >= n) {
                return Err(SnapshotError::new("cut term variable out of range"));
            }
        }
        if let Some(lp) = &self.root_lp {
            if lp.values.len() != n {
                return Err(SnapshotError::new("root LP length mismatch"));
            }
        }
        Ok(())
    }

    /// Serialises the snapshot as a single-line JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when the snapshot is internally
    /// inconsistent (a bug or memory corruption) — callers are expected to
    /// surface this loudly rather than drop the solve state.
    pub fn to_json(&self) -> Result<String, SnapshotError> {
        self.validate()?;
        let search = match self.search {
            SearchOrder::DepthFirst => "depth_first",
            SearchOrder::BestFirst => "best_first",
        };
        let doc = Value::Object(vec![
            ("version".into(), Value::Int(FORMAT_VERSION)),
            ("fingerprint".into(), Value::Int(self.fingerprint)),
            ("num_vars".into(), Value::Int(self.num_vars as u64)),
            ("search".into(), Value::Str(search.into())),
            ("nodes".into(), Value::Int(self.nodes)),
            ("root_bound".into(), bits(self.root_bound)),
            ("pruned_bound_min".into(), bits(self.pruned_bound_min)),
            ("last_bound_emitted".into(), bits(self.last_bound_emitted)),
            (
                "tree_separations_left".into(),
                Value::Int(self.tree_separations_left as u64),
            ),
            (
                "eager_separation".into(),
                Value::Bool(self.eager_separation),
            ),
            (
                "incumbent".into(),
                match &self.incumbent {
                    Some((objective, values)) => Value::Object(vec![
                        ("objective".into(), bits(*objective)),
                        ("values".into(), bits_array(values)),
                    ]),
                    None => Value::Null,
                },
            ),
            (
                "frontier".into(),
                Value::Array(self.frontier.iter().map(SnapshotNode::to_value).collect()),
            ),
            ("cuts".into(), cuts_value(&self.cuts)),
            ("pending_cuts".into(), cuts_value(&self.pending_cuts)),
            ("pseudo".into(), self.pseudo.to_value()),
            (
                "bases".into(),
                Value::Array(
                    self.bases
                        .iter()
                        .map(|(key, basis)| {
                            Value::Object(vec![
                                ("key".into(), Value::Int(*key)),
                                ("basis".into(), basis.snapshot_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("next_basis_key".into(), Value::Int(self.next_basis_key)),
            (
                "root_lp".into(),
                match &self.root_lp {
                    Some(lp) => lp.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "root_basis_key".into(),
                match self.root_basis_key {
                    Some(k) => Value::Int(k),
                    None => Value::Null,
                },
            ),
        ]);
        Ok(doc.write())
    }

    /// Parses a snapshot serialized by [`SolveSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] on malformed JSON, an unknown format
    /// version, or an internally inconsistent document.
    pub fn from_json(text: &str) -> Result<Self, SnapshotError> {
        let doc = Value::parse(text).map_err(|e| SnapshotError::new(e.to_string()))?;
        let version = get_u64(&doc, "version")?;
        if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(SnapshotError::new(format!(
                "unsupported snapshot version {version} (expected {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
            )));
        }
        let search = match doc.get("search").and_then(Value::as_str) {
            Some("depth_first") => SearchOrder::DepthFirst,
            Some("best_first") => SearchOrder::BestFirst,
            _ => return Err(SnapshotError::field("search")),
        };
        let incumbent = match doc.get("incumbent") {
            Some(Value::Null) => None,
            Some(obj) => Some((
                get_f64_bits(obj, "objective")?,
                f64s_from(get_array(obj, "values")?, "values")?,
            )),
            None => return Err(SnapshotError::field("incumbent")),
        };
        let frontier = get_array(&doc, "frontier")?
            .iter()
            .map(SnapshotNode::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        let cuts = cuts_from(get_array(&doc, "cuts")?)?;
        // Version 1 predates the pending batch: absent means empty.
        let pending_cuts = match doc.get("pending_cuts") {
            Some(value) => cuts_from(
                value
                    .as_array()
                    .ok_or_else(|| SnapshotError::field("pending_cuts"))?,
            )?,
            None => Vec::new(),
        };
        let mut bases = Vec::new();
        for entry in get_array(&doc, "bases")? {
            let key = get_u64(entry, "key")?;
            let basis = Basis::from_snapshot_value(
                entry
                    .get("basis")
                    .ok_or_else(|| SnapshotError::field("basis"))?,
            )?;
            bases.push((key, basis));
        }
        let root_lp = match doc.get("root_lp") {
            Some(Value::Null) => None,
            Some(obj) => Some(RootLpSnapshot::from_value(obj)?),
            None => return Err(SnapshotError::field("root_lp")),
        };
        let snapshot = Self {
            fingerprint: get_u64(&doc, "fingerprint")?,
            num_vars: get_usize(&doc, "num_vars")?,
            search,
            nodes: get_u64(&doc, "nodes")?,
            frontier,
            incumbent,
            root_bound: get_f64_bits(&doc, "root_bound")?,
            pruned_bound_min: get_f64_bits(&doc, "pruned_bound_min")?,
            last_bound_emitted: get_f64_bits(&doc, "last_bound_emitted")?,
            tree_separations_left: get_usize(&doc, "tree_separations_left")?,
            // Version 1 predates the eager flag: absent means the
            // conservative late-separation schedule.
            eager_separation: matches!(doc.get("eager_separation"), Some(Value::Bool(true))),
            cuts,
            pending_cuts,
            pseudo: PseudoSnapshot::from_value(
                doc.get("pseudo")
                    .ok_or_else(|| SnapshotError::field("pseudo"))?,
            )?,
            bases,
            next_basis_key: get_u64(&doc, "next_basis_key")?,
            root_lp,
            root_basis_key: opt_u64(doc.get("root_basis_key"), "root_basis_key")?,
        };
        snapshot.validate()?;
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolveSnapshot {
        SolveSnapshot {
            fingerprint: 0xdead_beef_cafe_f00d,
            num_vars: 3,
            search: SearchOrder::DepthFirst,
            nodes: 17,
            frontier: vec![
                SnapshotNode {
                    deltas: vec![(0, 1.0, 1.0), (2, 0.0, 0.0)],
                    depth: 2,
                    bound: -12.25,
                    branched: Some(0),
                    parent_basis: Some(4),
                    parent_bound_is_lp: true,
                    branch_up: true,
                    branch_step: 0.375,
                    nogood_ok: true,
                },
                SnapshotNode {
                    deltas: vec![],
                    depth: 0,
                    bound: f64::NEG_INFINITY,
                    branched: None,
                    parent_basis: None,
                    parent_bound_is_lp: false,
                    branch_up: false,
                    branch_step: 0.0,
                    nogood_ok: false,
                },
            ],
            incumbent: Some((-10.0, vec![1.0, 0.0, 1.0])),
            root_bound: -15.5,
            pruned_bound_min: f64::INFINITY,
            last_bound_emitted: -15.5,
            tree_separations_left: 6,
            eager_separation: true,
            cuts: vec![
                CutRow {
                    terms: vec![(0, 1.0), (1, 1.0)],
                    rhs: 1.0,
                    kind: CutKind::Clique,
                },
                CutRow {
                    terms: vec![(0, 0.25), (2, -1.5)],
                    rhs: 0.75,
                    kind: CutKind::Gomory,
                },
                CutRow {
                    terms: vec![(0, 1.0), (1, 2.0), (2, 1.0)],
                    rhs: 1.0,
                    kind: CutKind::LiftedCover,
                },
            ],
            pending_cuts: vec![CutRow {
                terms: vec![(0, 1.0), (1, -1.0)],
                rhs: 0.0,
                kind: CutKind::NoGood,
            }],
            pseudo: PseudoSnapshot {
                up_sum: vec![0.1, 0.0, 2.5],
                up_cnt: vec![1, 0, 2],
                down_sum: vec![0.0, 0.3, 0.0],
                down_cnt: vec![0, 1, 0],
                global_sum: [0.3, 2.6],
                global_cnt: [1, 3],
            },
            bases: Vec::new(),
            next_basis_key: 5,
            root_lp: Some(RootLpSnapshot {
                objective: -15.5,
                values: vec![0.5, 0.5, 1.0],
                reduced_costs: Some((vec![0.0, 0.1, 0.0], vec![0.2, 0.0, 0.0])),
                pivots: 42,
            }),
            root_basis_key: None,
        }
    }

    #[test]
    fn json_round_trip_is_bit_exact() {
        let snap = sample();
        let text = snap.to_json().unwrap();
        let back = SolveSnapshot::from_json(&text).unwrap();
        // Field-level equality through a second serialization: the JSON is
        // fully deterministic, so text equality is bit-for-bit state
        // equality (including infinities and signed zeros).
        assert_eq!(back.to_json().unwrap(), text);
        assert_eq!(back.nodes(), 17);
        assert_eq!(back.open_nodes(), 2);
        assert!(back.has_incumbent());
        assert_eq!(back.fingerprint(), snap.fingerprint());
        assert_eq!(back.frontier[1].bound, f64::NEG_INFINITY);
    }

    #[test]
    fn version_and_shape_mismatches_are_loud() {
        let snap = sample();
        let text = snap.to_json().unwrap();
        let wrong_version = text.replacen("\"version\":2", "\"version\":99", 1);
        let err = SolveSnapshot::from_json(&wrong_version).unwrap_err();
        assert!(err.to_string().contains("version 99"), "{err}");
        assert!(SolveSnapshot::from_json("{}").is_err());
        assert!(SolveSnapshot::from_json("not json").is_err());
    }

    #[test]
    fn inconsistent_state_fails_validation_on_both_sides() {
        let mut snap = sample();
        snap.pseudo.up_sum.pop(); // length mismatch vs num_vars
        assert!(snap.to_json().is_err());
        let mut snap = sample();
        snap.frontier[0].deltas.push((99, 0.0, 1.0)); // out of range
        let err = snap.to_json().unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn approx_bytes_scales_with_content() {
        let small = SolveSnapshot {
            frontier: Vec::new(),
            incumbent: None,
            root_lp: None,
            cuts: Vec::new(),
            ..sample()
        };
        assert!(small.approx_bytes() < sample().approx_bytes());
    }
}
