//! Cutting planes: a pool of knapsack-cover and clique cuts.
//!
//! The BIST formulations are dominated by two structures the LP relaxation is
//! weak on: knapsack-style rows (the one-hot multiplexer-sizing selectors and
//! the OR-reduction rows) and packing/partitioning rows (the register
//! assignment cliques and the `≤ 1` signature/TPG sharing rows). Both admit
//! classic families of valid inequalities:
//!
//! * **cover cuts** — for `Σ aᵢ·xᵢ ≤ b` over binaries with `aᵢ > 0`, any
//!   *cover* `C` (a set with `Σ_{C} aᵢ > b`) yields `Σ_{C} xᵢ ≤ |C| − 1`,
//! * **clique cuts** — for any clique `K` of the conflict graph (pairs of
//!   binaries that cannot both be 1), `Σ_{K} xᵢ ≤ 1`.
//!
//! [`CutGenerator`] mines the model for both structures once, then separates
//! violated members on demand from a fractional LP point. The branch and
//! bound keeps the accepted cuts in its row set (see
//! [`crate::solver::BranchAndBound`]): they are globally valid, so the
//! propagator and the simplex consume them exactly like model rows, at the
//! root and at every node.

use crate::model::{CmpOp, Model, VarKind};
use crate::EPS;
use std::collections::BTreeSet;

/// Minimum violation for a cut to be worth adding.
const MIN_VIOLATION: f64 = 0.02;

/// A generated cut `Σ terms ≤ rhs` (cuts are always `≤` rows).
#[derive(Debug, Clone, PartialEq)]
pub struct CutRow {
    /// Sparse `(variable index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
    /// Which family produced the cut.
    pub kind: CutKind,
}

/// The cut families of the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CutKind {
    /// A knapsack cover inequality.
    Cover,
    /// A conflict-graph clique inequality.
    Clique,
    /// A Gomory mixed-integer cut read off a fractional row of an optimal
    /// simplex basis (see [`crate::simplex::gomory_cuts`]).
    Gomory,
    /// A cover inequality strengthened with sequence-independent lifting
    /// coefficients `π_j = max{h : μ_h ≤ a_j}` for heavy out-of-cover
    /// items, where `μ_h` is the sum of the `h` largest cover weights.
    LiftedCover,
    /// A conflict no-good `Σ_{S⁺} x − Σ_{S⁻} x ≤ |S⁺| − 1` learned from an
    /// infeasibility-refuted subtree with fixings `S⁺` (at 1) and `S⁻`
    /// (at 0).
    NoGood,
}

/// One knapsack source row, normalised to `Σ aᵢ·xᵢ ≤ b` with `aᵢ > 0`.
#[derive(Debug, Clone)]
struct Knapsack {
    terms: Vec<(usize, f64)>,
    rhs: f64,
}

/// Mines a model for cut sources and separates violated cuts from LP points.
///
/// The generator deduplicates by support, so re-separating at a later
/// incumbent never re-emits a cut that is already in the row set.
#[derive(Debug, Clone)]
pub struct CutGenerator {
    knapsacks: Vec<Knapsack>,
    /// Sorted conflict-graph neighbour lists (binaries only).
    adjacency: Vec<Vec<u32>>,
    /// Supports (plus rhs) of every cut emitted so far.
    emitted: BTreeSet<(Vec<u32>, i64)>,
}

impl CutGenerator {
    /// Scans the model's rows for knapsack and conflict structure.
    pub fn new(model: &Model) -> Self {
        let binary: Vec<bool> = model
            .vars()
            .iter()
            .map(|v| matches!(v.kind, VarKind::Binary))
            .collect();
        let mut knapsacks = Vec::new();
        let mut adjacency: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); model.num_vars()];

        for constraint in model.constraints() {
            // Normalised ≤ views of the row (both halves of an equality).
            let views: &[f64] = match constraint.op {
                CmpOp::Le => &[1.0],
                CmpOp::Ge => &[-1.0],
                CmpOp::Eq => &[1.0, -1.0],
            };
            for &sign in views {
                let rhs = sign * constraint.rhs;
                let mut terms: Vec<(usize, f64)> = Vec::with_capacity(constraint.expr.len());
                let mut all_positive_binary = true;
                for (var, coeff) in constraint.expr.iter() {
                    let a = sign * coeff;
                    if a <= EPS || !binary[var.index()] {
                        all_positive_binary = false;
                        break;
                    }
                    terms.push((var.index(), a));
                }
                if !all_positive_binary || terms.len() < 2 || rhs <= EPS {
                    continue;
                }
                let weight: f64 = terms.iter().map(|&(_, a)| a).sum();
                if weight <= rhs + EPS {
                    continue; // no cover exists, the row is redundant
                }
                // Conflict edges: pairs that cannot both be 1.
                if terms.len() <= 32 {
                    for (i, &(x, ax)) in terms.iter().enumerate() {
                        for &(y, ay) in &terms[i + 1..] {
                            if ax + ay > rhs + EPS {
                                adjacency[x].insert(y as u32);
                                adjacency[y].insert(x as u32);
                            }
                        }
                    }
                }
                knapsacks.push(Knapsack { terms, rhs });
            }
        }

        Self {
            knapsacks,
            adjacency: adjacency
                .into_iter()
                .map(|s| s.into_iter().collect())
                .collect(),
            emitted: BTreeSet::new(),
        }
    }

    /// Whether the model offered any structure to cut on.
    pub fn has_sources(&self) -> bool {
        !self.knapsacks.is_empty() || self.adjacency.iter().any(|a| !a.is_empty())
    }

    /// Number of cuts emitted so far (over all separation rounds).
    pub fn emitted(&self) -> usize {
        self.emitted.len()
    }

    /// Re-registers previously emitted cuts in the dedup set, so a
    /// snapshot-resumed search (which reinstalls the serialized cut pool
    /// into the row set) never separates a duplicate of a cut it already
    /// carries. The keys are rebuilt by the same `cut_key` every emission
    /// path uses: sorted support plus a coefficient/rhs bit signature.
    pub fn restore_emitted(&mut self, cuts: &[CutRow]) {
        for cut in cuts {
            self.emitted.insert(cut_key(&cut.terms, cut.rhs));
        }
    }

    /// Registers an externally derived cut (Gomory, no-good) in the dedup
    /// set. Returns `false` — and the caller must not install the cut —
    /// when an identical row was already emitted in an earlier round.
    pub fn admit(&mut self, cut: &CutRow) -> bool {
        self.emitted.insert(cut_key(&cut.terms, cut.rhs))
    }

    /// Separates cuts violated by the fractional point `x`, at most `max_new`
    /// of them, most violated families first. Already-emitted cuts are never
    /// returned again.
    pub fn separate(&mut self, x: &[f64], max_new: usize) -> Vec<CutRow> {
        let mut cuts = Vec::new();
        self.separate_covers(x, max_new, &mut cuts);
        if cuts.len() < max_new {
            self.separate_cliques(x, max_new, &mut cuts);
        }
        if cuts.len() < max_new {
            self.separate_lifted_covers(x, max_new, &mut cuts);
        }
        cuts
    }

    /// Greedy cover separation: per knapsack, build the cover minimising
    /// `Σ_{C} (1 − xᵢ)` (items closest to 1 first, weighted by coefficient).
    fn separate_covers(&mut self, x: &[f64], max_new: usize, cuts: &mut Vec<CutRow>) {
        for knap in &self.knapsacks {
            if cuts.len() >= max_new {
                return;
            }
            let Some(cover) = greedy_cover(knap, x) else {
                continue;
            };
            let lp_sum: f64 = cover.iter().map(|&j| x[j]).sum();
            let rhs = cover.len() as f64 - 1.0;
            if lp_sum <= rhs + MIN_VIOLATION {
                continue;
            }
            push_cut(&mut self.emitted, cover, rhs, CutKind::Cover, cuts);
        }
    }

    /// Lifted cover separation: the greedy cover of `separate_covers`
    /// strengthened with sequence-independent lifting coefficients for
    /// heavy out-of-cover items. With `μ_h` the sum of the `h` largest
    /// cover weights and `π_j = max{h : μ_h ≤ a_j}`, the inequality
    /// `Σ_{i∈C} x_i + Σ_{j∉C} π_j·x_j ≤ |C| − 1` is valid for the
    /// knapsack: any 0-1 point with lifted LHS ≥ |C| carries at least the
    /// cover's total weight (each lifted item `j` stands in for `π_j` of
    /// the largest cover items, the chosen cover items for the smallest),
    /// which exceeds `b`. Only emitted when some `π_j ≥ 1` — otherwise the
    /// plain cover already says it.
    fn separate_lifted_covers(&mut self, x: &[f64], max_new: usize, cuts: &mut Vec<CutRow>) {
        for knap in &self.knapsacks {
            if cuts.len() >= max_new {
                return;
            }
            let Some(cover) = greedy_cover(knap, x) else {
                continue;
            };
            // μ prefix sums over the cover weights, largest first.
            let mut weights: Vec<f64> = cover.iter().map(|&j| knap.weight_of(j)).collect();
            weights.sort_by(|a, b| b.total_cmp(a));
            let mut mu = vec![0.0];
            for &w in &weights {
                mu.push(mu.last().unwrap() + w);
            }
            let in_cover: BTreeSet<usize> = cover.iter().copied().collect();
            let mut terms: Vec<(usize, f64)> = cover.iter().map(|&j| (j, 1.0)).collect();
            let mut lifted_any = false;
            for &(j, a) in &knap.terms {
                if in_cover.contains(&j) {
                    continue;
                }
                let pi = mu[1..].iter().take_while(|&&m| m <= a + EPS).count();
                if pi >= 1 {
                    terms.push((j, pi as f64));
                    lifted_any = true;
                }
            }
            if !lifted_any {
                continue;
            }
            let rhs = cover.len() as f64 - 1.0;
            let lhs: f64 = terms.iter().map(|&(j, w)| w * x[j]).sum();
            if lhs <= rhs + MIN_VIOLATION {
                continue;
            }
            terms.sort_by_key(|&(j, _)| j);
            push_cut_row(&mut self.emitted, terms, rhs, CutKind::LiftedCover, cuts);
        }
    }

    /// Greedy clique separation: grow cliques from the most fractional
    /// variables, highest LP value first.
    fn separate_cliques(&mut self, x: &[f64], max_new: usize, cuts: &mut Vec<CutRow>) {
        let mut seeds: Vec<usize> = (0..x.len().min(self.adjacency.len()))
            .filter(|&j| x[j] > MIN_VIOLATION && !self.adjacency[j].is_empty())
            .collect();
        seeds.sort_by(|&i, &j| {
            x[j].partial_cmp(&x[i])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(i.cmp(&j))
        });
        seeds.truncate(100);
        for &seed in &seeds {
            if cuts.len() >= max_new {
                return;
            }
            let mut clique = vec![seed];
            let mut lp_sum = x[seed];
            for &c in &self.adjacency[seed] {
                let c = c as usize;
                if x[c] <= EPS {
                    continue;
                }
                if clique
                    .iter()
                    .all(|&m| self.adjacency[c].binary_search(&(m as u32)).is_ok())
                {
                    clique.push(c);
                    lp_sum += x[c];
                }
            }
            if clique.len() < 2 || lp_sum <= 1.0 + MIN_VIOLATION {
                continue;
            }
            push_cut(&mut self.emitted, clique, 1.0, CutKind::Clique, cuts);
        }
    }
}

impl Knapsack {
    /// Coefficient of variable `j` in the normalised row (0 if absent).
    fn weight_of(&self, j: usize) -> f64 {
        self.terms
            .iter()
            .find(|&&(v, _)| v == j)
            .map_or(0.0, |&(_, a)| a)
    }
}

/// The greedy cover of a knapsack at the LP point `x`: items closest to 1
/// first (weighted by coefficient) until the weight exceeds the capacity.
/// `None` when no cover forms.
fn greedy_cover(knap: &Knapsack, x: &[f64]) -> Option<Vec<usize>> {
    let mut order: Vec<usize> = (0..knap.terms.len()).collect();
    order.sort_by(|&i, &j| {
        let (vi, ai) = (x[knap.terms[i].0], knap.terms[i].1);
        let (vj, aj) = (x[knap.terms[j].0], knap.terms[j].1);
        let ki = (1.0 - vi) / ai;
        let kj = (1.0 - vj) / aj;
        ki.partial_cmp(&kj)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(knap.terms[i].0.cmp(&knap.terms[j].0))
    });
    let mut cover = Vec::new();
    let mut weight = 0.0;
    for &t in &order {
        cover.push(knap.terms[t].0);
        weight += knap.terms[t].1;
        if weight > knap.rhs + EPS {
            return Some(cover);
        }
    }
    None
}

/// Builds the conflict no-good of a refuted subtree: with `ones` the
/// binaries fixed to 1 and `zeros` those fixed to 0 on the subtree's path,
/// `Σ_{ones} x − Σ_{zeros} x ≤ |ones| − 1` excludes exactly the assignments
/// that agree with every fixing, and nothing else — any feasible point must
/// flip at least one of them.
pub fn nogood_from_fixings(ones: &[usize], zeros: &[usize]) -> CutRow {
    let mut terms: Vec<(usize, f64)> = ones
        .iter()
        .map(|&j| (j, 1.0))
        .chain(zeros.iter().map(|&j| (j, -1.0)))
        .collect();
    terms.sort_by_key(|&(j, _)| j);
    CutRow {
        terms,
        rhs: ones.len() as f64 - 1.0,
        kind: CutKind::NoGood,
    }
}

/// Coefficient-aware dedup key: the sorted support plus an FNV fold of the
/// coefficient and rhs bit patterns. A pure function of the canonical cut
/// row, so [`CutGenerator::restore_emitted`] rebuilds identical keys from a
/// deserialized pool and a resumed search stays deterministic.
fn cut_key(terms: &[(usize, f64)], rhs: f64) -> (Vec<u32>, i64) {
    use crate::sparse::{fnv_fold, FNV_OFFSET};
    let mut sorted: Vec<(usize, f64)> = terms.to_vec();
    sorted.sort_by_key(|&(j, _)| j);
    let support: Vec<u32> = sorted.iter().map(|&(j, _)| j as u32).collect();
    let mut h = FNV_OFFSET;
    for &(_, c) in &sorted {
        fnv_fold(&mut h, c.to_bits());
    }
    fnv_fold(&mut h, rhs.to_bits());
    (support, h as i64)
}

/// Installs a unit-coefficient cut over `support` unless an identical cut was
/// already emitted.
fn push_cut(
    emitted: &mut BTreeSet<(Vec<u32>, i64)>,
    mut support: Vec<usize>,
    rhs: f64,
    kind: CutKind,
    cuts: &mut Vec<CutRow>,
) {
    support.sort_unstable();
    support.dedup();
    let terms: Vec<(usize, f64)> = support.into_iter().map(|j| (j, 1.0)).collect();
    push_cut_row(emitted, terms, rhs, kind, cuts);
}

/// Installs a general-coefficient cut unless an identical row was already
/// emitted. `terms` must be sorted by variable index.
fn push_cut_row(
    emitted: &mut BTreeSet<(Vec<u32>, i64)>,
    terms: Vec<(usize, f64)>,
    rhs: f64,
    kind: CutKind,
    cuts: &mut Vec<CutRow>,
) {
    if !emitted.insert(cut_key(&terms, rhs)) {
        return;
    }
    cuts.push(CutRow { terms, rhs, kind });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn cover_cut_is_separated_from_a_fractional_point() {
        // 3a + 2b + 2c ≤ 4: {b, c} is a cover (2+2 > 4 fails.. use {a, b}).
        let mut m = Model::new("knap");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_leq([(a, 3.0), (b, 2.0), (c, 2.0)], 4.0, "cap");
        let mut generator = CutGenerator::new(&m);
        assert!(generator.has_sources());
        // The LP point a = 1, b = 0.5, c = 0 violates the cover {a, b}:
        // 1 + 0.5 > 1.
        let cuts = generator.separate(&[1.0, 0.5, 0.0], 8);
        assert!(!cuts.is_empty());
        let cover = &cuts[0];
        assert_eq!(cover.kind, CutKind::Cover);
        assert_eq!(cover.rhs, cover.terms.len() as f64 - 1.0);
        // The cut must be valid for every 0-1 point of the knapsack.
        for mask in 0u32..8 {
            let point = [
                f64::from(mask & 1),
                f64::from((mask >> 1) & 1),
                f64::from((mask >> 2) & 1),
            ];
            let weight = 3.0 * point[a.index()] + 2.0 * point[b.index()] + 2.0 * point[c.index()];
            if weight <= 4.0 {
                let lhs: f64 = cover.terms.iter().map(|&(j, w)| w * point[j]).sum();
                assert!(lhs <= cover.rhs + 1e-9, "cover cut cuts off {point:?}");
            }
        }
        // Re-separating the same point returns nothing new for that support.
        let again = generator.separate(&[1.0, 0.5, 0.0], 8);
        assert!(again.iter().all(|cut| cut.terms != cuts[0].terms));
    }

    #[test]
    fn clique_cut_merges_pairwise_conflicts() {
        let mut m = Model::new("clique");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "xy");
        m.add_leq([(y, 1.0), (z, 1.0)], 1.0, "yz");
        m.add_leq([(x, 1.0), (z, 1.0)], 1.0, "xz");
        let mut generator = CutGenerator::new(&m);
        // x = y = z = 0.5 satisfies every pair but violates the triangle.
        let cuts = generator.separate(&[0.5, 0.5, 0.5], 8);
        let clique = cuts
            .iter()
            .find(|c| c.kind == CutKind::Clique)
            .expect("triangle clique cut");
        assert_eq!(clique.terms.len(), 3);
        assert_eq!(clique.rhs, 1.0);
    }

    #[test]
    fn partitioning_rows_feed_the_conflict_graph() {
        let mut m = Model::new("assign");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_eq([(x, 1.0), (y, 1.0), (z, 1.0)], 1.0, "one_of");
        let generator = CutGenerator::new(&m);
        assert!(generator.has_sources());
        assert!(generator.adjacency[x.index()].contains(&(y.index() as u32)));
        assert!(generator.adjacency[y.index()].contains(&(z.index() as u32)));
    }

    #[test]
    fn integral_points_yield_no_cuts() {
        let mut m = Model::new("int");
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_leq([(a, 3.0), (b, 2.0)], 4.0, "cap");
        let mut generator = CutGenerator::new(&m);
        assert!(generator.separate(&[0.0, 1.0], 8).is_empty());
        assert_eq!(generator.emitted(), 0);
    }

    #[test]
    fn models_without_structure_have_no_sources() {
        let mut m = Model::new("cont");
        let x = m.add_continuous("x", 0.0, 1.0);
        let y = m.add_continuous("y", 0.0, 1.0);
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "row");
        let generator = CutGenerator::new(&m);
        assert!(!generator.has_sources());
    }
}
