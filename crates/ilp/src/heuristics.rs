//! Primal heuristics used to obtain an early incumbent.
//!
//! A good incumbent found before the tree search starts dramatically improves
//! pruning for the BIST formulations, whose constraint structure (assignment
//! rows plus implication chains) makes greedy, propagation-repaired dives
//! succeed very often.

use crate::propagate::{Domains, PropagationResult, Propagator};

/// Tries to build a feasible assignment by repeatedly fixing an unfixed
/// integral variable to its objective-cheapest bound and propagating.
///
/// When fixing a variable to the preferred value makes the box infeasible the
/// dive backtracks that single decision and tries the opposite bound; if both
/// fail the dive aborts. The dive therefore runs in time linear in the number
/// of variables times the propagation cost and either returns a feasible
/// assignment or `None` — it never loops.
///
/// `objective` is the minimisation objective (one coefficient per variable).
pub fn greedy_dive(
    propagator: &Propagator,
    start: &Domains,
    objective: &[f64],
) -> Option<Vec<f64>> {
    let mut domains = start.clone();
    if propagator.propagate(&mut domains) == PropagationResult::Infeasible {
        return None;
    }

    // Variables in decreasing "constrainedness" order: how many rows mention
    // them. Fixing the most entangled variables first lets propagation do the
    // bulk of the work.
    let n = domains.len();
    let matrix = propagator.matrix();
    let occurrence: Vec<usize> = (0..n).map(|j| matrix.occurrences(j)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| occurrence[b].cmp(&occurrence[a]).then(a.cmp(&b)));

    for &j in &order {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        let lower = domains.lower(j);
        let upper = domains.upper(j);
        // Prefer the bound with the smaller objective contribution.
        let (first, second) = if objective[j] >= 0.0 {
            (lower, upper)
        } else {
            (upper, lower)
        };
        // `domains` is at a fixpoint between fixes, so each attempt only
        // needs to propagate from the variable just fixed.
        let mut attempt = domains.clone();
        attempt.fix(j, first);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        let mut attempt = domains.clone();
        attempt.fix(j, second);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        return None;
    }

    if !domains.all_integral_fixed() {
        return None;
    }
    // Continuous variables (if any) sit at their cheapest bound.
    let mut values = domains.assignment();
    for j in 0..n {
        if !domains.is_integral(j) && !domains.is_fixed(j) {
            values[j] = if objective[j] >= 0.0 {
                domains.lower(j)
            } else {
                domains.upper(j)
            };
        }
    }
    Some(values)
}

/// Rounds a fractional LP solution to the nearest integers and repairs it by
/// propagation; returns a feasible assignment when the repair succeeds.
pub fn round_and_repair(
    propagator: &Propagator,
    start: &Domains,
    lp_values: &[f64],
    objective: &[f64],
) -> Option<Vec<f64>> {
    let mut domains = start.clone();
    // Fix the near-integral variables first; leave fractional ones to the dive.
    let mut fixed = Vec::new();
    for (j, &v) in lp_values.iter().enumerate() {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        if (v - v.round()).abs() <= 1e-4 {
            let rounded = v.round().clamp(domains.lower(j), domains.upper(j));
            if !domains.fix(j, rounded) {
                return None;
            }
            fixed.push(j);
        }
    }
    // `start` is the node's propagated (fixpoint) box, so only the rows of
    // the variables just rounded can fire.
    if propagator.propagate_seeded(&mut domains, &fixed) == PropagationResult::Infeasible {
        return None;
    }
    greedy_dive(propagator, &domains, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn setup(model: &Model) -> (Propagator, Domains, Vec<f64>) {
        let prop = Propagator::new(model);
        let dom = Domains::from_model(model);
        let obj = model.vars().iter().map(|v| v.objective).collect();
        (prop, dom, obj)
    }

    #[test]
    fn dive_solves_assignment_problem() {
        // Three items each assigned to exactly one of two bins.
        let mut m = Model::new("assign");
        let mut vars = Vec::new();
        for i in 0..3 {
            let a = m.add_binary(format!("x{i}a"));
            let b = m.add_binary(format!("x{i}b"));
            m.add_eq([(a, 1.0), (b, 1.0)], 1.0, format!("row{i}"));
            vars.push((a, b));
        }
        m.set_objective(
            vars.iter()
                .flat_map(|&(a, b)| [(a, 1.0), (b, 2.0)])
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let (prop, dom, obj) = setup(&m);
        let sol = greedy_dive(&prop, &dom, &obj).expect("dive should succeed");
        assert!(m.is_feasible(&sol, 1e-6));
        // The dive is a heuristic: it must produce *a* feasible assignment,
        // whose cost is between the optimum (3) and the worst case (6).
        let cost = m.objective_value(&sol);
        assert!((3.0..=6.0).contains(&cost), "cost {cost}");
    }

    #[test]
    fn dive_respects_conflicts() {
        // x + y >= 1 and x + y <= 1: exactly one of them; cheapest is y.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "ge");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "le");
        m.set_objective([(x, 5.0), (y, 1.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = greedy_dive(&prop, &dom, &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
    }

    #[test]
    fn dive_reports_failure_on_infeasible_model() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 2.0, "impossible");
        let (prop, dom, obj) = setup(&m);
        assert!(greedy_dive(&prop, &dom, &obj).is_none());
    }

    #[test]
    fn round_and_repair_uses_lp_hint() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 3.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = round_and_repair(&prop, &dom, &[1.0, 0.0], &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
        assert!(sol[x.index()] > 0.5);
    }

    #[test]
    fn dive_handles_already_fixed_domains() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (prop, mut dom, obj) = setup(&m);
        dom.fix(x.index(), 1.0);
        let sol = greedy_dive(&prop, &dom, &obj).expect("feasible");
        assert!((sol[x.index()] - 1.0).abs() < crate::EPS);
    }
}
