//! Primal heuristics used to obtain an early incumbent and to improve it
//! during the search.
//!
//! A good incumbent found before the tree search starts dramatically improves
//! pruning for the BIST formulations, whose constraint structure (assignment
//! rows plus implication chains) makes greedy, propagation-repaired dives
//! succeed very often. On top of the pre-search [`greedy_dive`] /
//! [`round_and_repair`] pair, the search layer invokes a *scheduled*
//! heuristic rotation on a node-count period: [`lp_guided_dive`] (fix along
//! the relaxation, backtracking a bounded number of failed decisions), a
//! feasibility pump built from [`pump_target`] plus distance-objective LPs
//! driven by the solver, and a RINS-style [`rins_dive`] that fixes the
//! variables on which the incumbent and the node relaxation agree before
//! diving on the rest.

use crate::propagate::{Domains, PropagationResult, Propagator};

/// First-choice failures tolerated by [`lp_guided_dive`] before aborting;
/// each failure costs an extra propagation pass, so unbounded repair could
/// degenerate into enumeration on adversarial boxes.
const DIVE_MAX_BACKTRACKS: usize = 32;

/// Tries to build a feasible assignment by repeatedly fixing an unfixed
/// integral variable to its objective-cheapest bound and propagating.
///
/// When fixing a variable to the preferred value makes the box infeasible the
/// dive backtracks that single decision and tries the opposite bound; if both
/// fail the dive aborts. The dive therefore runs in time linear in the number
/// of variables times the propagation cost and either returns a feasible
/// assignment or `None` — it never loops.
///
/// `objective` is the minimisation objective (one coefficient per variable).
pub fn greedy_dive(
    propagator: &Propagator,
    start: &Domains,
    objective: &[f64],
) -> Option<Vec<f64>> {
    let mut domains = start.clone();
    if propagator.propagate(&mut domains) == PropagationResult::Infeasible {
        return None;
    }

    // Variables in decreasing "constrainedness" order: how many rows mention
    // them. Fixing the most entangled variables first lets propagation do the
    // bulk of the work.
    let n = domains.len();
    let matrix = propagator.matrix();
    let occurrence: Vec<usize> = (0..n).map(|j| matrix.occurrences(j)).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| occurrence[b].cmp(&occurrence[a]).then(a.cmp(&b)));

    for &j in &order {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        let lower = domains.lower(j);
        let upper = domains.upper(j);
        // Prefer the bound with the smaller objective contribution.
        let (first, second) = if objective[j] >= 0.0 {
            (lower, upper)
        } else {
            (upper, lower)
        };
        // `domains` is at a fixpoint between fixes, so each attempt only
        // needs to propagate from the variable just fixed.
        let mut attempt = domains.clone();
        attempt.fix(j, first);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        let mut attempt = domains.clone();
        attempt.fix(j, second);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        return None;
    }

    if !domains.all_integral_fixed() {
        return None;
    }
    // Continuous variables (if any) sit at their cheapest bound.
    let mut values = domains.assignment();
    for j in 0..n {
        if !domains.is_integral(j) && !domains.is_fixed(j) {
            values[j] = if objective[j] >= 0.0 {
                domains.lower(j)
            } else {
                domains.upper(j)
            };
        }
    }
    Some(values)
}

/// Dives along an LP relaxation: unfixed integral variables are fixed to
/// their rounded relaxation value, least-fractional first, propagating after
/// every decision. A failed first choice backtracks that single decision to
/// the opposite bound; after `DIVE_MAX_BACKTRACKS` such repairs (or one
/// two-sided failure) the dive aborts. Continuous variables are completed at
/// their objective-cheapest bound, exactly as in [`greedy_dive`].
pub fn lp_guided_dive(
    propagator: &Propagator,
    start: &Domains,
    lp_values: &[f64],
    objective: &[f64],
) -> Option<Vec<f64>> {
    let n = start.len();
    if lp_values.len() != n {
        return None;
    }
    let mut domains = start.clone();
    if propagator.propagate(&mut domains) == PropagationResult::Infeasible {
        return None;
    }

    // Most-decided variables first: the relaxation is most confident about
    // the near-integral ones, so fixing them first leaves propagation and
    // the backtrack budget for the genuinely fractional tail.
    let mut order: Vec<usize> = (0..n)
        .filter(|&j| domains.is_integral(j) && !domains.is_fixed(j))
        .collect();
    let frac = |j: usize| {
        let v = lp_values[j];
        (v - v.round()).abs()
    };
    order.sort_by(|&a, &b| frac(a).total_cmp(&frac(b)).then(a.cmp(&b)));

    let mut backtracks = 0usize;
    for &j in &order {
        if domains.is_fixed(j) {
            continue; // propagation got there first
        }
        let lower = domains.lower(j);
        let upper = domains.upper(j);
        let first = lp_values[j].round().clamp(lower, upper);
        let mut attempt = domains.clone();
        attempt.fix(j, first);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        backtracks += 1;
        if backtracks > DIVE_MAX_BACKTRACKS {
            return None;
        }
        // The rounded value refuted; the only other integral candidate that
        // propagation has not excluded sits on the other side of the box.
        let second = if first <= lower { upper } else { lower };
        let mut attempt = domains.clone();
        attempt.fix(j, second);
        if propagator.propagate_seeded(&mut attempt, &[j]) == PropagationResult::Consistent {
            domains = attempt;
            continue;
        }
        return None;
    }

    if !domains.all_integral_fixed() {
        return None;
    }
    let mut values = domains.assignment();
    for j in 0..n {
        if !domains.is_integral(j) && !domains.is_fixed(j) {
            values[j] = if objective[j] >= 0.0 {
                domains.lower(j)
            } else {
                domains.upper(j)
            };
        }
    }
    Some(values)
}

/// The feasibility-pump rounding step: the integral point of the box nearest
/// to an LP solution. The solver alternates this with a distance-objective
/// LP until the two meet (an LP-feasible integral point) or the pump cycles.
pub fn pump_target(domains: &Domains, lp_values: &[f64]) -> Vec<f64> {
    lp_values
        .iter()
        .enumerate()
        .map(|(j, &v)| {
            if domains.is_integral(j) {
                v.round().clamp(domains.lower(j), domains.upper(j))
            } else {
                v.clamp(domains.lower(j), domains.upper(j))
            }
        })
        .collect()
}

/// RINS-style improvement dive: fixes every unfixed integral variable on
/// which the incumbent and the node relaxation agree (the relaxation rounds
/// to the incumbent's value), then dives LP-guided on the remaining
/// neighbourhood. Returns a feasible assignment when the sub-dive succeeds —
/// the caller decides whether it actually improves the incumbent.
pub fn rins_dive(
    propagator: &Propagator,
    start: &Domains,
    incumbent: &[f64],
    lp_values: &[f64],
    objective: &[f64],
) -> Option<Vec<f64>> {
    let n = start.len();
    if incumbent.len() != n || lp_values.len() != n {
        return None;
    }
    let mut domains = start.clone();
    let mut fixed = Vec::new();
    let mut free = 0usize;
    for j in 0..n {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        let agree = (lp_values[j].round() - incumbent[j].round()).abs() < 0.5;
        let target = incumbent[j].round();
        if agree && target >= domains.lower(j) - 0.5 && target <= domains.upper(j) + 0.5 {
            if !domains.fix(j, target.clamp(domains.lower(j), domains.upper(j))) {
                return None;
            }
            fixed.push(j);
        } else {
            free += 1;
        }
    }
    // A neighbourhood with nothing left to decide re-derives the incumbent;
    // one with nothing fixed is a plain dive the scheduler already runs.
    if fixed.is_empty() || free == 0 {
        return None;
    }
    if propagator.propagate_seeded(&mut domains, &fixed) == PropagationResult::Infeasible {
        return None;
    }
    lp_guided_dive(propagator, &domains, lp_values, objective)
}

/// Rounds a fractional LP solution to the nearest integers and repairs it by
/// propagation; returns a feasible assignment when the repair succeeds.
pub fn round_and_repair(
    propagator: &Propagator,
    start: &Domains,
    lp_values: &[f64],
    objective: &[f64],
) -> Option<Vec<f64>> {
    let mut domains = start.clone();
    // Fix the near-integral variables first; leave fractional ones to the dive.
    let mut fixed = Vec::new();
    for (j, &v) in lp_values.iter().enumerate() {
        if !domains.is_integral(j) || domains.is_fixed(j) {
            continue;
        }
        if (v - v.round()).abs() <= 1e-4 {
            let rounded = v.round().clamp(domains.lower(j), domains.upper(j));
            if !domains.fix(j, rounded) {
                return None;
            }
            fixed.push(j);
        }
    }
    // `start` is the node's propagated (fixpoint) box, so only the rows of
    // the variables just rounded can fire.
    if propagator.propagate_seeded(&mut domains, &fixed) == PropagationResult::Infeasible {
        return None;
    }
    greedy_dive(propagator, &domains, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, Sense};

    fn setup(model: &Model) -> (Propagator, Domains, Vec<f64>) {
        let prop = Propagator::new(model);
        let dom = Domains::from_model(model);
        let obj = model.vars().iter().map(|v| v.objective).collect();
        (prop, dom, obj)
    }

    #[test]
    fn dive_solves_assignment_problem() {
        // Three items each assigned to exactly one of two bins.
        let mut m = Model::new("assign");
        let mut vars = Vec::new();
        for i in 0..3 {
            let a = m.add_binary(format!("x{i}a"));
            let b = m.add_binary(format!("x{i}b"));
            m.add_eq([(a, 1.0), (b, 1.0)], 1.0, format!("row{i}"));
            vars.push((a, b));
        }
        m.set_objective(
            vars.iter()
                .flat_map(|&(a, b)| [(a, 1.0), (b, 2.0)])
                .collect::<Vec<_>>(),
            Sense::Minimize,
        );
        let (prop, dom, obj) = setup(&m);
        let sol = greedy_dive(&prop, &dom, &obj).expect("dive should succeed");
        assert!(m.is_feasible(&sol, 1e-6));
        // The dive is a heuristic: it must produce *a* feasible assignment,
        // whose cost is between the optimum (3) and the worst case (6).
        let cost = m.objective_value(&sol);
        assert!((3.0..=6.0).contains(&cost), "cost {cost}");
    }

    #[test]
    fn dive_respects_conflicts() {
        // x + y >= 1 and x + y <= 1: exactly one of them; cheapest is y.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "ge");
        m.add_leq([(x, 1.0), (y, 1.0)], 1.0, "le");
        m.set_objective([(x, 5.0), (y, 1.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = greedy_dive(&prop, &dom, &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
    }

    #[test]
    fn dive_reports_failure_on_infeasible_model() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 2.0, "impossible");
        let (prop, dom, obj) = setup(&m);
        assert!(greedy_dive(&prop, &dom, &obj).is_none());
    }

    #[test]
    fn round_and_repair_uses_lp_hint() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_geq([(x, 1.0), (y, 1.0)], 1.0, "c");
        m.set_objective([(x, 1.0), (y, 3.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = round_and_repair(&prop, &dom, &[1.0, 0.0], &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
        assert!(sol[x.index()] > 0.5);
    }

    #[test]
    fn lp_guided_dive_follows_the_relaxation() {
        // Either bin works; the LP hint points at the expensive one and the
        // dive should follow it rather than the objective.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_eq([(x, 1.0), (y, 1.0)], 1.0, "pick-one");
        m.set_objective([(x, 1.0), (y, 3.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = lp_guided_dive(&prop, &dom, &[0.1, 0.9], &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
        assert!(sol[y.index()] > 0.5);
    }

    #[test]
    fn lp_guided_dive_backtracks_a_refuted_rounding() {
        // The hint rounds x to 0 but x >= 1 forces it back up.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.add_geq([(x, 1.0)], 1.0, "force");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let sol = lp_guided_dive(&prop, &dom, &[0.2], &obj).expect("feasible");
        assert!(sol[x.index()] > 0.5);
    }

    #[test]
    fn pump_target_rounds_into_the_box() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let c = m.add_continuous("c", 0.0, 2.0);
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let dom = Domains::from_model(&m);
        let target = pump_target(&dom, &[0.7, 3.5]);
        assert_eq!(target[x.index()], 1.0);
        assert_eq!(target[c.index()], 2.0);
    }

    #[test]
    fn rins_dive_fixes_agreements_and_completes() {
        // Incumbent and relaxation agree on x = 1; y stays free and the
        // sub-dive must pick it to satisfy the covering row.
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_geq([(x, 1.0), (y, 1.0), (z, 1.0)], 2.0, "cover");
        m.set_objective([(x, 1.0), (y, 2.0), (z, 3.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        let incumbent = [1.0, 0.0, 1.0];
        let lp = [0.9, 0.6, 0.5];
        let sol = rins_dive(&prop, &dom, &incumbent, &lp, &obj).expect("feasible");
        assert!(m.is_feasible(&sol, 1e-6));
        assert!(sol[x.index()] > 0.5);
    }

    #[test]
    fn rins_dive_declines_trivial_neighbourhoods() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (prop, dom, obj) = setup(&m);
        // Full agreement: nothing left free, nothing to improve.
        assert!(rins_dive(&prop, &dom, &[1.0], &[1.0], &obj).is_none());
        // No agreement: plain dive territory, not a RINS neighbourhood.
        assert!(rins_dive(&prop, &dom, &[1.0], &[0.1], &obj).is_none());
    }

    #[test]
    fn dive_handles_already_fixed_domains() {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        m.set_objective([(x, 1.0)], Sense::Minimize);
        let (prop, mut dom, obj) = setup(&m);
        dom.fix(x.index(), 1.0);
        let sol = greedy_dive(&prop, &dom, &obj).expect("feasible");
        assert!((sol[x.index()] - 1.0).abs() < crate::EPS);
    }
}
