//! Shared sparse storage for the constraint matrix.
//!
//! The solver kernels all consume the same linear rows: the propagator
//! tightens bounds over them, the simplex builds its tableau from them, the
//! branching rules count variable occurrences in them. The seed kept one
//! `Vec<(usize, f64)>` per row, which made row iteration allocate-heavy and
//! left no way to answer "which rows mention variable `j`?" without a full
//! scan — the question bound propagation asks constantly.
//!
//! [`SparseModel`] compiles the model once into a compressed sparse row
//! (CSR) image for row-wise access *and* a compressed sparse column (CSC)
//! index for column-wise access. Both live in flat arrays, so cloning a
//! compiled model (which the layered synthesis engine does per k-test
//! session) is three `memcpy`s instead of thousands of small allocations.

use crate::model::{CmpOp, Model};

/// FNV-1a offset basis.
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a folding step, with an extra shift-XOR diffusion: plain
/// XOR-multiply never propagates a difference in the *top* bit downwards
/// (`2⁶³·odd ≡ 2⁶³ mod 2⁶⁴`), so without it two sign-bit-only input
/// differences — e.g. negating an even number of coefficients — cancel
/// exactly.
#[inline]
pub(crate) fn fnv_fold(h: &mut u64, bits: u64) {
    *h ^= bits;
    *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    *h ^= *h >> 29;
}

/// A borrowed view of one constraint row `Σ aᵢ·xᵢ  op  rhs`.
#[derive(Debug, Clone, Copy)]
pub struct RowRef<'a> {
    /// Column (variable) indices of the non-zero coefficients.
    pub cols: &'a [u32],
    /// Coefficient values, parallel to `cols`.
    pub vals: &'a [f64],
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side.
    pub rhs: f64,
}

impl RowRef<'_> {
    /// Iterates over `(variable index, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.cols
            .iter()
            .zip(self.vals)
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of non-zero coefficients in the row.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the row has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }
}

/// The constraint matrix of a model in combined CSR + CSC form.
#[derive(Debug, Clone, Default)]
pub struct SparseModel {
    num_vars: usize,
    // CSR: rows in constraint order.
    row_start: Vec<usize>,
    row_cols: Vec<u32>,
    row_vals: Vec<f64>,
    ops: Vec<CmpOp>,
    rhs: Vec<f64>,
    // CSC: for every variable, the rows that mention it and the matching
    // coefficients (parallel arrays).
    col_start: Vec<usize>,
    col_rows: Vec<u32>,
    col_vals: Vec<f64>,
    /// FNV-1a content hash of the rows (senses, right-hand sides, column
    /// indices, coefficients), computed once at construction. The simplex
    /// uses it to guard warm-basis reuse without re-scanning the matrix.
    fingerprint: u64,
}

impl SparseModel {
    /// Compiles the constraint rows of a model.
    pub fn from_model(model: &Model) -> Self {
        Self::from_rows(
            model.num_vars(),
            model
                .constraints()
                .iter()
                .map(|c| (c.expr.iter().map(|(v, a)| (v.index(), a)), c.op, c.rhs)),
        )
    }

    /// Builds the matrix from an iterator of `(terms, op, rhs)` rows.
    ///
    /// Terms with a zero coefficient are dropped; duplicate column entries
    /// within one row are *not* merged (the model layer already merges them).
    ///
    /// # Panics
    ///
    /// Panics if a term references a variable index `>= num_vars`.
    pub fn from_rows<R, T>(num_vars: usize, rows: R) -> Self
    where
        R: IntoIterator<Item = (T, CmpOp, f64)>,
        T: IntoIterator<Item = (usize, f64)>,
    {
        let mut this = Self {
            num_vars,
            row_start: vec![0],
            ..Self::default()
        };
        for (terms, op, rhs) in rows {
            for (j, a) in terms {
                assert!(j < num_vars, "variable index {j} out of range ({num_vars})");
                if a != 0.0 {
                    this.row_cols.push(j as u32);
                    this.row_vals.push(a);
                }
            }
            this.row_start.push(this.row_cols.len());
            this.ops.push(op);
            this.rhs.push(rhs);
        }
        this.build_csc();
        this.fingerprint = this.compute_fingerprint();
        this
    }

    fn compute_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        fnv_fold(&mut h, self.num_rows() as u64);
        fnv_fold(&mut h, self.num_vars() as u64);
        for row in self.rows() {
            fnv_fold(
                &mut h,
                match row.op {
                    CmpOp::Le => 1,
                    CmpOp::Ge => 2,
                    CmpOp::Eq => 3,
                },
            );
            fnv_fold(&mut h, row.rhs.to_bits());
            for (j, a) in row.terms() {
                fnv_fold(&mut h, j as u64);
                fnv_fold(&mut h, a.to_bits());
            }
        }
        h
    }

    /// Content hash of the rows (see the field docs); two matrices with
    /// equal fingerprints are, modulo hash collisions, structurally and
    /// numerically identical row sets.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn build_csc(&mut self) {
        let mut counts = vec![0usize; self.num_vars + 1];
        for &c in &self.row_cols {
            counts[c as usize + 1] += 1;
        }
        for j in 0..self.num_vars {
            counts[j + 1] += counts[j];
        }
        let mut cursor = counts.clone();
        let mut col_rows = vec![0u32; self.row_cols.len()];
        let mut col_vals = vec![0.0f64; self.row_cols.len()];
        for i in 0..self.num_rows() {
            let span = self.row_start[i]..self.row_start[i + 1];
            for (&c, &a) in self.row_cols[span.clone()].iter().zip(&self.row_vals[span]) {
                col_rows[cursor[c as usize]] = i as u32;
                col_vals[cursor[c as usize]] = a;
                cursor[c as usize] += 1;
            }
        }
        self.col_start = counts;
        self.col_rows = col_rows;
        self.col_vals = col_vals;
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.ops.len()
    }

    /// Number of variables (columns), including ones no row mentions.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of stored non-zero coefficients.
    pub fn num_nonzeros(&self) -> usize {
        self.row_cols.len()
    }

    /// A borrowed view of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_rows()`.
    pub fn row(&self, i: usize) -> RowRef<'_> {
        let span = self.row_start[i]..self.row_start[i + 1];
        RowRef {
            cols: &self.row_cols[span.clone()],
            vals: &self.row_vals[span],
            op: self.ops[i],
            rhs: self.rhs[i],
        }
    }

    /// Iterates over all rows in constraint order.
    pub fn rows(&self) -> impl Iterator<Item = RowRef<'_>> + '_ {
        (0..self.num_rows()).map(|i| self.row(i))
    }

    /// The rows that mention variable `j` (CSC column), in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_vars()`.
    pub fn rows_of_var(&self, j: usize) -> &[u32] {
        &self.col_rows[self.col_start[j]..self.col_start[j + 1]]
    }

    /// The CSC column of variable `j`: the rows that mention it (ascending)
    /// and the matching coefficients, as parallel slices. This is the
    /// column view the revised simplex prices and FTRANs from.
    ///
    /// # Panics
    ///
    /// Panics if `j >= num_vars()`.
    pub fn col(&self, j: usize) -> (&[u32], &[f64]) {
        let span = self.col_start[j]..self.col_start[j + 1];
        (&self.col_rows[span.clone()], &self.col_vals[span])
    }

    /// Number of rows mentioning variable `j`.
    pub fn occurrences(&self, j: usize) -> usize {
        self.col_start[j + 1] - self.col_start[j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn sample() -> (Model, SparseModel) {
        let mut m = Model::new("m");
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        let z = m.add_binary("z");
        m.add_leq([(x, 1.0), (y, 2.0)], 3.0, "a");
        m.add_geq([(y, -1.0), (z, 4.0)], 1.0, "b");
        m.add_eq([(x, 1.0)], 1.0, "c");
        let s = SparseModel::from_model(&m);
        (m, s)
    }

    #[test]
    fn csr_reflects_constraints() {
        let (m, s) = sample();
        assert_eq!(s.num_rows(), 3);
        assert_eq!(s.num_vars(), 3);
        assert_eq!(s.num_nonzeros(), 5);
        let row = s.row(0);
        assert_eq!(row.op, CmpOp::Le);
        assert_eq!(row.rhs, 3.0);
        let terms: Vec<_> = row.terms().collect();
        assert_eq!(terms, vec![(0, 1.0), (1, 2.0)]);
        assert_eq!(s.rows().count(), m.num_constraints());
    }

    #[test]
    fn csc_answers_rows_of_var() {
        let (_m, s) = sample();
        assert_eq!(s.rows_of_var(0), &[0, 2]); // x in rows a and c
        assert_eq!(s.rows_of_var(1), &[0, 1]); // y in rows a and b
        assert_eq!(s.rows_of_var(2), &[1]); // z in row b
        assert_eq!(s.occurrences(0), 2);
        assert_eq!(s.occurrences(2), 1);
    }

    #[test]
    fn csc_columns_carry_coefficients() {
        let (_m, s) = sample();
        let (rows, vals) = s.col(1); // y: 2.0 in row a, -1.0 in row b
        assert_eq!(rows, &[0, 1]);
        assert_eq!(vals, &[2.0, -1.0]);
        let (rows, vals) = s.col(2); // z: 4.0 in row b
        assert_eq!(rows, &[1]);
        assert_eq!(vals, &[4.0]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let s = SparseModel::from_rows(2, [(vec![(0usize, 0.0), (1, 1.0)], CmpOp::Le, 1.0)]);
        assert_eq!(s.num_nonzeros(), 1);
        assert_eq!(s.rows_of_var(0), &[] as &[u32]);
    }

    #[test]
    fn empty_rows_and_unused_columns() {
        let s = SparseModel::from_rows(3, [(Vec::<(usize, f64)>::new(), CmpOp::Ge, -1.0)]);
        assert_eq!(s.num_rows(), 1);
        assert!(s.row(0).is_empty());
        assert_eq!(s.occurrences(2), 0);
    }
}
