//! Solve results: status, variable values and statistics.

use crate::cuts::{CutKind, CutRow};
use crate::model::VarId;
use crate::snapshot::SolveSnapshot;
use std::sync::Arc;
use std::time::Duration;

/// Outcome of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The reported solution is proven optimal.
    Optimal,
    /// A feasible solution was found but optimality was not proven within
    /// the configured limits.
    Feasible,
    /// The model was proven to have no feasible solution.
    Infeasible,
    /// The relaxation is unbounded in the optimisation direction.
    Unbounded,
    /// The limits expired before any feasible solution was found; nothing is
    /// known about feasibility.
    Unknown,
    /// The solve was cancelled through a [`crate::CancelToken`] before it
    /// finished. The solution carries the best incumbent found up to that
    /// point, if any (check [`Solution::is_feasible`]).
    Interrupted,
}

impl Status {
    /// Whether the status *proves* a usable (feasible) assignment. An
    /// interrupted solve may still carry one — [`Solution::is_feasible`]
    /// accounts for that.
    pub fn has_solution(self) -> bool {
        matches!(self, Status::Optimal | Status::Feasible)
    }

    /// Whether the solve was stopped by cancellation.
    pub fn is_interrupted(self) -> bool {
        self == Status::Interrupted
    }
}

/// One incumbent improvement during the search: when it happened and what
/// objective it reached. The sequence is strictly improving, so the first
/// entry at or below a target objective tells the *time-to-target* of the
/// solve — the metric the k-sweep benchmark uses to compare warm-start
/// chaining against cold starts.
#[derive(Debug, Clone, PartialEq)]
pub struct Improvement {
    /// Nodes explored when the incumbent improved (0 = before the search,
    /// i.e. a warm-start candidate or the dive heuristic).
    pub nodes: u64,
    /// Seconds since the solve started.
    pub seconds: f64,
    /// The new incumbent objective, in the model's external sense.
    pub objective: f64,
    /// Which layer produced the incumbent: `"warm-start"`, `"dive"`,
    /// `"root-lp"`, `"node-lp"`, `"rounding"`, `"lp-dive"`, `"pump"`,
    /// `"rins"` or `"lp"` (pure LP models).
    pub source: &'static str,
}

/// Cuts counted separately per [`CutKind`] — the observability half of the
/// cut pool: how many of each kind were emitted during a solve and how many
/// sit in the active row set at the end.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutCounts {
    /// Knapsack cover cuts.
    pub cover: u64,
    /// Clique cuts from the pairwise-conflict graph.
    pub clique: u64,
    /// Gomory mixed-integer cuts read off fractional basis rows.
    pub gomory: u64,
    /// Cover cuts lifted with non-cover knapsack items.
    pub lifted_cover: u64,
    /// Conflict no-goods learned from infeasibility-refuted subtrees.
    pub nogood: u64,
}

impl CutCounts {
    /// Sum over every kind.
    pub fn total(&self) -> u64 {
        self.cover + self.clique + self.gomory + self.lifted_cover + self.nogood
    }

    /// Increments the counter for `kind`.
    pub(crate) fn bump(&mut self, kind: CutKind) {
        match kind {
            CutKind::Cover => self.cover += 1,
            CutKind::Clique => self.clique += 1,
            CutKind::Gomory => self.gomory += 1,
            CutKind::LiftedCover => self.lifted_cover += 1,
            CutKind::NoGood => self.nogood += 1,
        }
    }
}

/// Counters describing the effort spent by the solver.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Number of branch-and-bound nodes explored.
    pub nodes: u64,
    /// Number of simplex iterations performed across all LP relaxations
    /// (two-phase primal, dual-simplex re-solves and strong branching).
    pub lp_pivots: u64,
    /// Simplex iterations spent in the *primal* simplex (the two phases of
    /// cold factorisations). `lp_primal_pivots + lp_dual_pivots ==
    /// lp_pivots`.
    pub lp_primal_pivots: u64,
    /// Simplex iterations spent in the *dual* simplex (warm re-solves from
    /// a cached basis, including strong-branching probes).
    pub lp_dual_pivots: u64,
    /// Simplex iterations priced by the devex reference framework.
    /// `devex_pivots + dantzig_pivots + bland_pivots == lp_pivots`.
    pub devex_pivots: u64,
    /// Simplex iterations priced by the classic Dantzig rule (most-negative
    /// reduced cost / most-violated basic).
    pub dantzig_pivots: u64,
    /// Simplex iterations taken under the Bland anti-cycling fallback,
    /// whichever pricing mode was configured.
    pub bland_pivots: u64,
    /// Bound flips performed inside the LP kernel: nonbasic variables
    /// crossing their box without a basis change (rank-0 updates — the
    /// implicit-bound replacement for the old kernel's bound-row pivots).
    pub lp_bound_flips: u64,
    /// Basis refactorizations performed inside the LP kernel (periodic
    /// eta-file collapses), distinct from [`SolveStats::refactorizations`],
    /// which counts node-level cold factorisations.
    pub lp_basis_refactorizations: u64,
    /// Number of LP relaxations solved.
    pub lp_solves: u64,
    /// Simplex iterations of each *node relaxation* LP, in the order the
    /// nodes were popped (the root cut loop contributes the root's entry).
    /// Strong-branching probes and leaf completion LPs are not node
    /// relaxations and are excluded.
    pub node_lp_pivots: Vec<u64>,
    /// Node LPs re-solved with the dual simplex from a cached parent basis.
    pub warm_lp_solves: u64,
    /// Simplex iterations spent inside warm (dual-simplex) re-solves.
    pub warm_lp_pivots: u64,
    /// Cold factorisations at nodes where the solver *wanted* a warm start
    /// (basis evicted, stale, aged out, over the warm pivot budget, or the
    /// root). Kernel-internal eta-file collapses are counted separately in
    /// [`SolveStats::lp_basis_refactorizations`].
    pub refactorizations: u64,
    /// Strong-branching child LPs solved to initialise pseudo-costs.
    pub strong_branch_solves: u64,
    /// Integral bounds tightened by reduced-cost fixing against the
    /// incumbent.
    pub rc_fixed_bounds: u64,
    /// Number of propagation fixpoint rounds executed.
    pub propagations: u64,
    /// Wall-clock time of the solve.
    pub time: Duration,
    /// Best proven lower bound on the (minimisation) objective.
    pub best_bound: f64,
    /// Relative optimality gap `(incumbent - bound) / max(|incumbent|, 1)`,
    /// zero when proven optimal, infinity when no incumbent exists.
    pub gap: f64,
    /// True when the wall-clock or node limit stopped the search.
    pub limit_reached: bool,
    /// Cutting planes added to the row set (root separation plus the
    /// re-checks at improved incumbents).
    pub cuts: u64,
    /// Cuts emitted during this solve, counted per kind (learned no-goods
    /// count when they enter the pending pool, which may be after the
    /// install that flushes them).
    pub cuts_emitted: CutCounts,
    /// Cuts sitting in the active row set when the solve finished, per
    /// kind. After a resume this covers the restored pool too.
    pub cuts_active: CutCounts,
    /// Verbatim copies of every cut emitted during the solve, recorded only
    /// when [`crate::SolverConfig::record_cuts`] is on (used by the cut
    /// validity test suite; empty otherwise).
    pub emitted_cuts: Vec<CutRow>,
    /// Variables eliminated by the reducing presolve before the search
    /// (0 when presolve is off).
    pub presolve_vars_removed: u64,
    /// Rows removed by the reducing presolve before the search.
    pub presolve_rows_removed: u64,
    /// True when this solve continued a [`SolveSnapshot`] instead of
    /// starting a fresh tree; [`SolveStats::nodes`] then counts the whole
    /// tree (capture point included), while every other counter covers
    /// only the post-resume work.
    pub resumed: bool,
    /// True when the solve stopped early and captured a resumable snapshot
    /// (see [`Solution::snapshot`]).
    pub snapshot_captured: bool,
    /// Every incumbent improvement, in chronological order.
    pub improvements: Vec<Improvement>,
}

impl SolveStats {
    /// Seconds until the incumbent first reached `target` (minimisation
    /// sense: first improvement with `objective <= target + tol`). `None`
    /// when the solve never got there.
    pub fn seconds_to_target(&self, target: f64, tol: f64) -> Option<f64> {
        self.improvements
            .iter()
            .find(|imp| imp.objective <= target + tol)
            .map(|imp| imp.seconds)
    }

    /// Seconds until the final incumbent was found (0 when it came from a
    /// warm start; `None` when no incumbent exists).
    pub fn seconds_to_best(&self) -> Option<f64> {
        self.improvements.last().map(|imp| imp.seconds)
    }

    /// Nodes explored until the incumbent first reached `target`
    /// (minimisation sense). Unlike the wall-clock variant this is fully
    /// deterministic, which is what the sweep benchmark asserts on.
    pub fn nodes_to_target(&self, target: f64, tol: f64) -> Option<u64> {
        self.improvements
            .iter()
            .find(|imp| imp.objective <= target + tol)
            .map(|imp| imp.nodes)
    }

    /// Nodes explored until the final incumbent was found (`None` when no
    /// incumbent exists).
    pub fn nodes_to_best(&self) -> Option<u64> {
        self.improvements.last().map(|imp| imp.nodes)
    }
}

/// A solution returned by [`crate::Model::solve`].
#[derive(Debug, Clone)]
pub struct Solution {
    status: Status,
    values: Vec<f64>,
    objective: f64,
    stats: SolveStats,
    /// Resumable solve state, present only when the search stopped early
    /// with [`crate::SolverConfig::snapshot`] on.
    snapshot: Option<Arc<SolveSnapshot>>,
}

/// Equality compares the *result* (status, assignment, objective, stats);
/// the attached snapshot is transport, not outcome — two solves that reach
/// the same answer compare equal whether or not one carries a checkpoint.
impl PartialEq for Solution {
    fn eq(&self, other: &Self) -> bool {
        self.status == other.status
            && self.values == other.values
            && self.objective == other.objective
            && self.stats == other.stats
    }
}

impl Solution {
    /// Creates a solution record (crate-internal; users obtain solutions from
    /// the solver).
    pub(crate) fn new(status: Status, values: Vec<f64>, objective: f64, stats: SolveStats) -> Self {
        Self {
            status,
            values,
            objective,
            stats,
            snapshot: None,
        }
    }

    /// Creates a solution carrying no assignment (infeasible / unknown).
    pub(crate) fn without_values(status: Status, stats: SolveStats) -> Self {
        Self {
            status,
            values: Vec::new(),
            objective: f64::INFINITY,
            stats,
            snapshot: None,
        }
    }

    /// Attaches (or clears) the resumable snapshot of an early-stopped
    /// solve.
    pub(crate) fn with_snapshot(mut self, snapshot: Option<Arc<SolveSnapshot>>) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// The solve status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Whether the solution is proven optimal.
    pub fn is_optimal(&self) -> bool {
        self.status == Status::Optimal
    }

    /// Whether a feasible assignment is available (optimal or not). This is
    /// also true for an [interrupted](Status::Interrupted) solve that was
    /// cancelled after an incumbent had been found.
    pub fn is_feasible(&self) -> bool {
        self.status.has_solution()
            || (self.status == Status::Interrupted && !self.values.is_empty())
    }

    /// Objective value of the reported assignment.
    ///
    /// Returns `f64::INFINITY` when no assignment is available.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Value of a variable in the reported assignment.
    ///
    /// # Panics
    ///
    /// Panics if no assignment is available or `var` is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// Whether a (binary) variable is 1 in the reported assignment.
    ///
    /// # Panics
    ///
    /// Panics if no assignment is available or `var` is out of range.
    pub fn is_one(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }

    /// Rounded integer value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if no assignment is available or `var` is out of range.
    pub fn int_value(&self, var: VarId) -> i64 {
        self.value(var).round() as i64
    }

    /// The dense assignment vector (empty when no solution is available).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Solver effort statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The resumable snapshot captured when this solve stopped early, if
    /// any. Feed it to [`crate::SolveSession::resume`] (or
    /// [`crate::SolverConfig::resume`]) to continue the same tree.
    pub fn snapshot(&self) -> Option<&SolveSnapshot> {
        self.snapshot.as_deref()
    }

    /// The snapshot as a cheaply clonable shared handle (`None` when the
    /// solve ran to completion or capture was off).
    pub fn shared_snapshot(&self) -> Option<Arc<SolveSnapshot>> {
        self.snapshot.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_predicates() {
        assert!(Status::Optimal.has_solution());
        assert!(Status::Feasible.has_solution());
        assert!(!Status::Infeasible.has_solution());
        assert!(!Status::Unknown.has_solution());
        assert!(!Status::Unbounded.has_solution());
        assert!(!Status::Interrupted.has_solution());
        assert!(Status::Interrupted.is_interrupted());
        assert!(!Status::Feasible.is_interrupted());
    }

    #[test]
    fn interrupted_solution_is_feasible_exactly_when_it_carries_values() {
        let with_values = Solution::new(
            Status::Interrupted,
            vec![1.0, 0.0],
            3.0,
            SolveStats::default(),
        );
        assert!(with_values.is_feasible());
        assert!(!with_values.is_optimal());
        let bare = Solution::without_values(Status::Interrupted, SolveStats::default());
        assert!(!bare.is_feasible());
    }

    #[test]
    fn solution_accessors() {
        let sol = Solution::new(
            Status::Optimal,
            vec![1.0, 0.0, 3.0],
            42.0,
            SolveStats::default(),
        );
        assert!(sol.is_optimal());
        assert!(sol.is_feasible());
        assert_eq!(sol.objective(), 42.0);
        assert!(sol.is_one(VarId(0)));
        assert!(!sol.is_one(VarId(1)));
        assert_eq!(sol.int_value(VarId(2)), 3);
        assert_eq!(sol.values().len(), 3);
    }

    #[test]
    fn empty_solution() {
        let sol = Solution::without_values(Status::Infeasible, SolveStats::default());
        assert!(!sol.is_feasible());
        assert!(sol.objective().is_infinite());
        assert!(sol.values().is_empty());
    }
}
