//! The *tseng* benchmark (Tseng/Siewiorek "Facet" style mixed-operation DFG).
//!
//! The exact DFG used by the DAC'99 authors is not published; this
//! reconstruction keeps the characteristic property used in their evaluation:
//! a small mixed-operation graph that binds onto **three** functional modules
//! (an ALU, a multiplier and a logic unit) and needs **five** registers.

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the tseng benchmark: eight operations over five inputs, five
/// control steps, three modules, five registers.
pub fn tseng() -> SynthesisInput {
    let mut b = DfgBuilder::new("tseng");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");
    let e = b.input("e");

    let t1 = b.op(OpKind::Add, "t1", a, bb); // step 0, ALU
    let t2 = b.op(OpKind::Mul, "t2", c, d); // step 0, MUL
    let t3 = b.op(OpKind::Sub, "t3", t1, e); // step 1, ALU
    let t4 = b.op(OpKind::Mul, "t4", t1, c); // step 1, MUL
    let t5 = b.op(OpKind::And, "t5", t3, t4); // step 2, LOGIC
    let t6 = b.op(OpKind::Add, "t6", t3, t2); // step 2, ALU
    let t7 = b.op(OpKind::Mul, "t7", t5, t6); // step 3, MUL
    let t8 = b.op(OpKind::Or, "t8", t7, d); // step 4, LOGIC
    b.output(t8);
    let dfg = b.finish();

    let schedule = Schedule::from_steps(vec![0, 0, 1, 1, 2, 2, 3, 4]);
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    SynthesisInput::new(dfg, schedule, binding).expect("tseng benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn tseng_resource_profile() {
        let input = tseng();
        assert_eq!(input.dfg().num_ops(), 8);
        assert_eq!(input.binding().num_modules(), 3);
        assert_eq!(input.num_control_steps(), 5);
        let table = LifetimeTable::new(&input).unwrap();
        assert_eq!(table.min_registers(), 5, "paper reports R = 5 for tseng");
    }

    #[test]
    fn tseng_module_classes() {
        let input = tseng();
        let mut classes: Vec<_> = input.binding().modules().iter().map(|m| m.class).collect();
        classes.sort();
        assert_eq!(
            classes,
            vec![
                ModuleClass::Alu,
                ModuleClass::Multiplier,
                ModuleClass::Logic
            ]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect::<Vec<_>>()
        );
    }
}
