//! The *iir3* benchmark: a 3rd-order IIR filter in direct form II.
//!
//! ```text
//! w  = x − a1·w1 − a2·w2 − a3·w3
//! y  = b0·w + b1·w1 + b2·w2 + b3·w3
//! ```
//!
//! Seven constant multiplications and six additive operations bound onto two
//! multipliers and one ALU — three modules, matching the three test sessions
//! reported for iir3 in the paper.

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the iir3 benchmark.
pub fn iir3() -> SynthesisInput {
    let mut b = DfgBuilder::new("iir3");
    let x = b.input("x");
    let w1 = b.input("w1");
    let w2 = b.input("w2");
    let w3 = b.input("w3");
    let a1 = b.constant("a1", 3);
    let a2 = b.constant("a2", 5);
    let a3 = b.constant("a3", 7);
    let b0 = b.constant("b0", 2);
    let b1 = b.constant("b1", 4);
    let b2 = b.constant("b2", 6);
    let b3 = b.constant("b3", 8);

    // Feedback path.
    let f1 = b.op(OpKind::Mul, "f1", a1, w1);
    let f2 = b.op(OpKind::Mul, "f2", a2, w2);
    let f3 = b.op(OpKind::Mul, "f3", a3, w3);
    let s1 = b.op(OpKind::Sub, "s1", x, f1);
    let s2 = b.op(OpKind::Sub, "s2", s1, f2);
    let w = b.op(OpKind::Sub, "w", s2, f3);

    // Feed-forward path.
    let g0 = b.op(OpKind::Mul, "g0", b0, w);
    let g1 = b.op(OpKind::Mul, "g1", b1, w1);
    let g2 = b.op(OpKind::Mul, "g2", b2, w2);
    let g3 = b.op(OpKind::Mul, "g3", b3, w3);
    let t1 = b.op(OpKind::Add, "t1", g0, g1);
    let t2 = b.op(OpKind::Add, "t2", g2, g3);
    let y = b.op(OpKind::Add, "y", t1, t2);
    b.output(w);
    b.output(y);
    let dfg = b.finish();

    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Alu, 1)]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of_with_alu).expect("iir3 schedules");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    SynthesisInput::new(dfg, schedule, binding).expect("iir3 benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn iir3_resource_profile() {
        let input = iir3();
        assert_eq!(input.dfg().num_ops(), 13, "7 mul + 3 sub + 3 add");
        assert_eq!(input.binding().num_modules(), 3);
        let table = LifetimeTable::new(&input).unwrap();
        let regs = table.min_registers();
        assert!(
            (5..=8).contains(&regs),
            "iir3 registers = {regs} (paper: 6)"
        );
    }

    #[test]
    fn iir3_has_two_outputs() {
        let input = iir3();
        assert_eq!(input.dfg().outputs().len(), 2);
        assert_eq!(input.dfg().constants().len(), 7);
    }
}
