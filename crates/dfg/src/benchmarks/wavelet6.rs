//! The *wavelet6* benchmark: a 6-tap analysis wavelet filter bank
//! (low-pass and high-pass halves sharing the same six input samples).
//!
//! ```text
//! yl = Σ_{i=0..5} h_i · x_i        yh = Σ_{i=0..5} g_i · x_i
//! ```
//!
//! Twelve multiplications and ten additions bound onto two multipliers and
//! one adder — three modules, matching the three test sessions reported for
//! wavelet6 in the paper.

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the wavelet6 benchmark.
pub fn wavelet6() -> SynthesisInput {
    let mut b = DfgBuilder::new("wavelet6");
    let taps = 6;
    let xs: Vec<_> = (0..taps).map(|i| b.input(format!("x{i}"))).collect();
    let hs: Vec<_> = (0..taps)
        .map(|i| b.constant(format!("h{i}"), 11 + i as i64))
        .collect();
    let gs: Vec<_> = (0..taps)
        .map(|i| b.constant(format!("g{i}"), 23 - i as i64))
        .collect();

    // Low-pass half.
    let lp: Vec<_> = (0..taps)
        .map(|i| b.op(OpKind::Mul, format!("lp{i}"), xs[i], hs[i]))
        .collect();
    let l0 = b.op(OpKind::Add, "l0", lp[0], lp[1]);
    let l1 = b.op(OpKind::Add, "l1", lp[2], lp[3]);
    let l2 = b.op(OpKind::Add, "l2", lp[4], lp[5]);
    let l3 = b.op(OpKind::Add, "l3", l0, l1);
    let yl = b.op(OpKind::Add, "yl", l3, l2);

    // High-pass half.
    let hp: Vec<_> = (0..taps)
        .map(|i| b.op(OpKind::Mul, format!("hp{i}"), xs[i], gs[i]))
        .collect();
    let h0 = b.op(OpKind::Add, "h0", hp[0], hp[1]);
    let h1 = b.op(OpKind::Add, "h1", hp[2], hp[3]);
    let h2 = b.op(OpKind::Add, "h2", hp[4], hp[5]);
    let h3 = b.op(OpKind::Add, "h3", h0, h1);
    let yh = b.op(OpKind::Add, "yh", h3, h2);

    b.output(yl);
    b.output(yh);
    let dfg = b.finish();

    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Adder, 1)]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of).expect("wavelet6 schedules");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
    SynthesisInput::new(dfg, schedule, binding).expect("wavelet6 benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn wavelet6_resource_profile() {
        let input = wavelet6();
        assert_eq!(input.dfg().num_ops(), 22, "12 mul + 10 add");
        assert_eq!(input.binding().num_modules(), 3);
        let table = LifetimeTable::new(&input).unwrap();
        let regs = table.min_registers();
        assert!(
            (6..=9).contains(&regs),
            "wavelet6 registers = {regs} (paper: 7)"
        );
    }

    #[test]
    fn wavelet6_shares_inputs_between_filter_halves() {
        let input = wavelet6();
        assert_eq!(input.dfg().primary_inputs().len(), 6);
        assert_eq!(input.dfg().outputs().len(), 2);
        // Every input sample feeds both the low-pass and the high-pass half.
        for x in input.dfg().primary_inputs() {
            assert_eq!(input.dfg().consumers(x).len(), 2);
        }
    }
}
