//! The *fir6* benchmark: a 6-tap direct-form FIR filter,
//! `y = Σ_{i=0..5} h_i · x_i`.
//!
//! The paper's version was produced by HYPER; this reconstruction uses the
//! textbook direct form (six constant-coefficient multiplications feeding an
//! addition chain) bound onto two multipliers and one adder — three modules,
//! matching the three test sessions reported for fir6.

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the fir6 benchmark.
pub fn fir6() -> SynthesisInput {
    let mut b = DfgBuilder::new("fir6");
    let taps = 6;
    let xs: Vec<_> = (0..taps).map(|i| b.input(format!("x{i}"))).collect();
    let hs: Vec<_> = (0..taps)
        .map(|i| b.constant(format!("h{i}"), 3 + 2 * i as i64))
        .collect();

    let products: Vec<_> = (0..taps)
        .map(|i| b.op(OpKind::Mul, format!("p{i}"), xs[i], hs[i]))
        .collect();

    // Balanced addition tree keeps the critical path short, as HYPER would.
    let a0 = b.op(OpKind::Add, "a0", products[0], products[1]);
    let a1 = b.op(OpKind::Add, "a1", products[2], products[3]);
    let a2 = b.op(OpKind::Add, "a2", products[4], products[5]);
    let a3 = b.op(OpKind::Add, "a3", a0, a1);
    let y = b.op(OpKind::Add, "y", a3, a2);
    b.output(y);
    let dfg = b.finish();

    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Adder, 1)]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of).expect("fir6 schedules");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
    SynthesisInput::new(dfg, schedule, binding).expect("fir6 benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn fir6_resource_profile() {
        let input = fir6();
        assert_eq!(input.dfg().num_ops(), 11, "6 mul + 5 add");
        assert_eq!(input.binding().num_modules(), 3);
        assert_eq!(input.dfg().constants().len(), 6);
        let table = LifetimeTable::new(&input).unwrap();
        let regs = table.min_registers();
        assert!(
            (5..=8).contains(&regs),
            "fir6 registers = {regs} (paper: 7)"
        );
    }

    #[test]
    fn one_output_and_six_inputs() {
        let input = fir6();
        assert_eq!(input.dfg().primary_inputs().len(), 6);
        assert_eq!(input.dfg().outputs().len(), 1);
    }
}
