//! The benchmark circuits of the DAC'99 evaluation.
//!
//! The paper evaluates six circuits: *tseng* and *paulin* (the two standard
//! high-level BIST synthesis benchmarks), and four filters synthesised with
//! HYPER — a 6th-order FIR filter, a 3rd-order IIR filter, a 4-point DCT and
//! a 6-tap wavelet filter. HYPER and the authors' intermediate files are not
//! available, so the filter DFGs here are reconstructed from the textbook
//! filter structures and scheduled/bound with this crate's list scheduler and
//! minimal binding; DESIGN.md documents the substitution and EXPERIMENTS.md
//! compares the resulting resource counts against the paper's.
//!
//! Every function returns a fully validated [`SynthesisInput`] (DFG +
//! schedule + module binding), ready for register/BIST assignment.

mod dct4;
mod figure1;
mod fir6;
mod iir3;
mod paulin;
mod random;
mod tseng;
mod wavelet6;

pub use dct4::dct4;
pub use figure1::figure1;
pub use fir6::fir6;
pub use iir3::iir3;
pub use paulin::paulin;
pub use random::{random_dfg, RandomDfgConfig};
pub use tseng::tseng;
pub use wavelet6::wavelet6;

use crate::graph::SynthesisInput;

/// The six evaluation circuits of the paper, in the order of its tables.
pub fn all() -> Vec<(&'static str, SynthesisInput)> {
    vec![
        ("tseng", tseng()),
        ("paulin", paulin()),
        ("fir6", fir6()),
        ("iir3", iir3()),
        ("dct4", dct4()),
        ("wavelet6", wavelet6()),
    ]
}

/// The subset of circuits small enough for exact (optimal) ILP solving in a
/// few seconds; used by the quick harness mode and by integration tests.
pub fn small() -> Vec<(&'static str, SynthesisInput)> {
    vec![
        ("figure1", figure1()),
        ("tseng", tseng()),
        ("paulin", paulin()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn all_benchmarks_are_valid_and_named() {
        let circuits = all();
        assert_eq!(circuits.len(), 6);
        for (name, input) in circuits {
            assert_eq!(input.name(), name);
            assert!(input.dfg().num_ops() >= 4, "{name} too small");
            assert!(
                input.binding().num_modules() >= 2,
                "{name} needs >= 2 modules"
            );
            let table = LifetimeTable::new(&input).unwrap();
            assert!(
                table.min_registers() >= 3,
                "{name} register count suspicious"
            );
        }
    }

    #[test]
    fn resource_counts_match_expectations() {
        // (name, modules, registers) — our reconstruction targets; the
        // paper's counts are (tseng 3/5, paulin 4/5, fir6 3/7, iir3 3/6,
        // dct4 4/6, wavelet6 3/7). Registers may differ slightly because the
        // filter DFGs are rebuilt from textbook structures (see DESIGN.md).
        let expectations = [
            ("tseng", 3),
            ("paulin", 4),
            ("fir6", 3),
            ("iir3", 3),
            ("dct4", 4),
            ("wavelet6", 3),
        ];
        for (name, modules) in expectations {
            let input = all()
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, i)| i)
                .unwrap();
            assert_eq!(
                input.binding().num_modules(),
                modules,
                "{name}: module count"
            );
        }
    }

    #[test]
    fn every_module_has_at_least_one_operation() {
        for (name, input) in all() {
            for module in input.binding().module_ids() {
                assert!(
                    !input.ops_on_module(module).is_empty(),
                    "{name}: module {module:?} is unused"
                );
            }
        }
    }
}
