//! Random layered DFG generation for stress and property tests.
//!
//! A small deterministic xorshift-style generator is used instead of an
//! external crate so the generated circuits are reproducible from a seed in
//! any environment.

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput, VarId};
use crate::schedule::Schedule;

/// Parameters of the random DFG generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomDfgConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of operations.
    pub num_ops: usize,
    /// Number of multipliers available for scheduling.
    pub multipliers: usize,
    /// Number of ALUs available for scheduling.
    pub alus: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        Self {
            num_inputs: 4,
            num_ops: 8,
            multipliers: 1,
            alus: 1,
            seed: 0xC0FFEE,
        }
    }
}

/// SplitMix64: tiny, deterministic, good enough for test-workload generation.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Generates a random scheduled-and-bound DFG.
///
/// Operation kinds are restricted to multiplications and additive operations
/// so the result always binds onto the configured multiplier/ALU mix. Every
/// operation draws its operands from earlier values, which guarantees the
/// graph is acyclic; values that end up unused are marked as outputs so no
/// operation is dead.
pub fn random_dfg(config: &RandomDfgConfig) -> SynthesisInput {
    let mut rng = SplitMix64(config.seed | 1);
    let mut b = DfgBuilder::new(format!("random_{}", config.seed));
    let mut pool: Vec<VarId> = (0..config.num_inputs.max(2))
        .map(|i| b.input(format!("in{i}")))
        .collect();
    let mut consumed = vec![false; 0];
    consumed.resize(pool.len(), false);

    for i in 0..config.num_ops.max(1) {
        let kind = match rng.below(4) {
            0 => OpKind::Mul,
            1 => OpKind::Add,
            2 => OpKind::Sub,
            _ => OpKind::Add,
        };
        let a_idx = rng.below(pool.len());
        let b_idx = rng.below(pool.len());
        let out = b.op(kind, format!("t{i}"), pool[a_idx], pool[b_idx]);
        consumed[a_idx] = true;
        consumed[b_idx] = true;
        pool.push(out);
        consumed.push(false);
    }
    // Mark every value that nothing consumes as a primary output.
    for (idx, &var) in pool.iter().enumerate() {
        if !consumed[idx] {
            b.output(var);
        }
    }
    let dfg = b.finish();

    let limits = BTreeMap::from([
        (ModuleClass::Multiplier, config.multipliers.max(1)),
        (ModuleClass::Alu, config.alus.max(1)),
    ]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of_with_alu)
        .expect("random DFG is acyclic and schedulable");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    SynthesisInput::new(dfg, schedule, binding).expect("random DFG is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn generation_is_deterministic() {
        let config = RandomDfgConfig::default();
        let a = random_dfg(&config);
        let b = random_dfg(&config);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = random_dfg(&RandomDfgConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_dfg(&RandomDfgConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn many_seeds_produce_valid_synthesis_inputs() {
        for seed in 0..25 {
            let config = RandomDfgConfig {
                seed,
                num_ops: 6 + (seed as usize % 7),
                num_inputs: 3 + (seed as usize % 3),
                multipliers: 1 + (seed as usize % 2),
                alus: 1,
            };
            let input = random_dfg(&config);
            assert!(input.dfg().validate().is_ok());
            let table = LifetimeTable::new(&input).unwrap();
            assert!(table.min_registers() >= 1);
        }
    }
}
