//! The running example of the paper (Figure 1): a four-operation DFG
//! synthesised onto three registers, one adder and one multiplier.

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the Figure 1 example.
///
/// Variables 0–3 are primary inputs, operations 8–11 of the paper are the
/// add/mul/mul/add chain, and the schedule places one operation per control
/// step (T = {0, 1, 2, 3}). The minimal binding produces exactly the two
/// modules (one adder M3, one multiplier M4) of the paper's data path.
pub fn figure1() -> SynthesisInput {
    let mut b = DfgBuilder::new("figure1");
    let v0 = b.input("v0");
    let v1 = b.input("v1");
    let v2 = b.input("v2");
    let v3 = b.input("v3");
    // op 8: v4 = v0 + v1
    let v4 = b.op(OpKind::Add, "v4", v0, v1);
    // op 9: v5 = v3 * v4
    let v5 = b.op(OpKind::Mul, "v5", v3, v4);
    // op 10: v6 = v4 * v2
    let v6 = b.op(OpKind::Mul, "v6", v4, v2);
    // op 11: v7 = v5 + v6
    let v7 = b.op(OpKind::Add, "v7", v5, v6);
    b.output(v7);
    let dfg = b.finish();

    let schedule = Schedule::from_steps(vec![0, 1, 2, 3]);
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
    SynthesisInput::new(dfg, schedule, binding).expect("figure1 benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn matches_the_paper_description() {
        let input = figure1();
        let dfg = input.dfg();
        assert_eq!(dfg.num_vars(), 8, "variables 0..7");
        assert_eq!(dfg.num_ops(), 4, "operations 8..11");
        assert_eq!(input.num_control_steps(), 4, "T = {{0,1,2,3}}");
        assert_eq!(dfg.input_edges().len(), 8, "|Ei| = 8");
        assert_eq!(dfg.output_edges().len(), 4, "|Eo| = 4");
        assert!(dfg.constants().is_empty(), "C = empty set");
        assert_eq!(input.binding().num_modules(), 2, "M = {{3, 4}}");
        let table = LifetimeTable::new(&input).unwrap();
        assert_eq!(table.min_registers(), 3, "R = {{0, 1, 2}}");
    }

    #[test]
    fn modules_are_one_adder_and_one_multiplier() {
        let input = figure1();
        let classes: Vec<ModuleClass> = input.binding().modules().iter().map(|m| m.class).collect();
        assert!(classes.contains(&ModuleClass::Adder));
        assert!(classes.contains(&ModuleClass::Multiplier));
    }
}
