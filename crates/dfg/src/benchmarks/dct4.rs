//! The *dct4* benchmark: a 4-point discrete cosine transform using the
//! even/odd butterfly decomposition.
//!
//! ```text
//! s0 = x0 + x3      d0 = x0 − x3
//! s1 = x1 + x2      d1 = x1 − x2
//! y0 = c4·(s0 + s1) y2 = c4·(s0 − s1)
//! y1 = c1·d0 + c3·d1
//! y3 = c3·d0 − c1·d1
//! ```
//!
//! Six multiplications and eight additive operations bound onto two
//! multipliers and two ALUs — four modules, matching the four test sessions
//! reported for dct4 in the paper.

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the dct4 benchmark.
pub fn dct4() -> SynthesisInput {
    let mut b = DfgBuilder::new("dct4");
    let x0 = b.input("x0");
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let c1 = b.constant("c1", 251);
    let c3 = b.constant("c3", 142);
    let c4 = b.constant("c4", 181);

    let s0 = b.op(OpKind::Add, "s0", x0, x3);
    let s1 = b.op(OpKind::Add, "s1", x1, x2);
    let d0 = b.op(OpKind::Sub, "d0", x0, x3);
    let d1 = b.op(OpKind::Sub, "d1", x1, x2);

    let e0 = b.op(OpKind::Add, "e0", s0, s1);
    let e1 = b.op(OpKind::Sub, "e1", s0, s1);
    let y0 = b.op(OpKind::Mul, "y0", c4, e0);
    let y2 = b.op(OpKind::Mul, "y2", c4, e1);

    let p0 = b.op(OpKind::Mul, "p0", c1, d0);
    let p1 = b.op(OpKind::Mul, "p1", c3, d1);
    let p2 = b.op(OpKind::Mul, "p2", c3, d0);
    let p3 = b.op(OpKind::Mul, "p3", c1, d1);
    let y1 = b.op(OpKind::Add, "y1", p0, p1);
    let y3 = b.op(OpKind::Sub, "y3", p2, p3);

    b.output(y0);
    b.output(y1);
    b.output(y2);
    b.output(y3);
    let dfg = b.finish();

    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Alu, 2)]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of_with_alu).expect("dct4 schedules");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    SynthesisInput::new(dfg, schedule, binding).expect("dct4 benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn dct4_resource_profile() {
        let input = dct4();
        assert_eq!(input.dfg().num_ops(), 14, "6 mul + 8 add/sub");
        assert_eq!(input.binding().num_modules(), 4);
        let table = LifetimeTable::new(&input).unwrap();
        let regs = table.min_registers();
        assert!(
            (5..=8).contains(&regs),
            "dct4 registers = {regs} (paper: 6)"
        );
    }

    #[test]
    fn dct4_produces_four_outputs() {
        let input = dct4();
        assert_eq!(input.dfg().outputs().len(), 4);
        assert_eq!(input.dfg().primary_inputs().len(), 4);
        assert_eq!(input.dfg().constants().len(), 3);
    }
}
