//! The *paulin* benchmark: the HAL differential-equation solver DFG used
//! throughout the high-level synthesis literature (Paulin's force-directed
//! scheduling paper and most BIST synthesis papers since).
//!
//! One Euler integration step of `y'' + 3xy' + 3y = 0`:
//!
//! ```text
//! x1 = x + dx
//! u1 = u - 3*x*u*dx - 3*y*dx
//! y1 = y + u*dx
//! c  = x1 < a
//! ```
//!
//! Six multiplications, two subtractions, two additions and one comparison,
//! bound onto two multipliers and two ALUs (four modules, matching the four
//! test sessions reported for paulin in the paper).

use std::collections::BTreeMap;

use crate::binding::{Binding, ModuleClass};
use crate::builder::DfgBuilder;
use crate::graph::{OpKind, SynthesisInput};
use crate::schedule::Schedule;

/// Builds the paulin (HAL differential equation) benchmark.
pub fn paulin() -> SynthesisInput {
    let mut b = DfgBuilder::new("paulin");
    let x = b.input("x");
    let y = b.input("y");
    let u = b.input("u");
    let dx = b.input("dx");
    let a = b.input("a");
    let three = b.constant("c3", 3);

    let m1 = b.op(OpKind::Mul, "m1", three, x); // 3*x
    let m2 = b.op(OpKind::Mul, "m2", m1, u); // 3*x*u
    let m3 = b.op(OpKind::Mul, "m3", m2, dx); // 3*x*u*dx
    let m4 = b.op(OpKind::Mul, "m4", three, y); // 3*y
    let m5 = b.op(OpKind::Mul, "m5", m4, dx); // 3*y*dx
    let m6 = b.op(OpKind::Mul, "m6", u, dx); // u*dx
    let s1 = b.op(OpKind::Sub, "s1", u, m3); // u - 3*x*u*dx
    let u1 = b.op(OpKind::Sub, "u1", s1, m5); // u1
    let x1 = b.op(OpKind::Add, "x1", x, dx); // x1
    let y1 = b.op(OpKind::Add, "y1", y, m6); // y1
    let c = b.op(OpKind::Less, "c", x1, a); // c
    b.output(u1);
    b.output(y1);
    b.output(c);
    let dfg = b.finish();

    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Alu, 2)]);
    let schedule =
        Schedule::list(&dfg, &limits, ModuleClass::of_with_alu).expect("paulin schedules");
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    SynthesisInput::new(dfg, schedule, binding).expect("paulin benchmark is consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn paulin_resource_profile() {
        let input = paulin();
        assert_eq!(input.dfg().num_ops(), 11, "6 mul + 2 sub + 2 add + 1 cmp");
        assert_eq!(
            input.binding().num_modules(),
            4,
            "paper reports 4 test sessions (= modules) for paulin"
        );
        let muls = input
            .binding()
            .modules()
            .iter()
            .filter(|m| m.class == ModuleClass::Multiplier)
            .count();
        assert_eq!(muls, 2);
        let table = LifetimeTable::new(&input).unwrap();
        // The paper reports 5 registers; our reconstruction must be close.
        let regs = table.min_registers();
        assert!((4..=7).contains(&regs), "paulin registers = {regs}");
    }

    #[test]
    fn paulin_has_one_constant() {
        let input = paulin();
        assert_eq!(input.dfg().constants().len(), 1);
    }

    #[test]
    fn critical_path_respected() {
        let input = paulin();
        // m1 -> m2 -> m3 -> s1 -> u1 is a five-operation chain, so at least
        // five control steps are needed.
        assert!(input.num_control_steps() >= 5);
    }
}
