//! The data-flow graph representation and the combined "scheduled and bound"
//! synthesis input of the paper.

use crate::binding::{Binding, ModuleId};
use crate::error::DfgError;
use crate::schedule::Schedule;

/// Index of an operation input port (0 = leftmost, as in Section 2.1 of the
/// paper).
pub type PortIndex = usize;

/// Handle to a DFG variable (an edge value in the data-flow graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Dense index of the variable.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a DFG operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpId(pub(crate) usize);

impl OpId {
    /// Dense index of the operation.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The kind of a (two-operand) data-flow operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Less-than comparison.
    Less,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise exclusive or.
    Xor,
    /// Logical/arithmetic shift (amount on port 1).
    Shift,
}

impl OpKind {
    /// Whether the two input ports may be swapped without changing the
    /// result (Section 3.1, Eq. (3) of the paper models these with
    /// pseudo-input ports).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            OpKind::Add | OpKind::Mul | OpKind::And | OpKind::Or | OpKind::Xor
        )
    }

    /// Number of input operands (all supported operations are binary).
    pub fn arity(self) -> usize {
        2
    }

    /// Short mnemonic used in names and reports.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Less => "cmp",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Shift => "shl",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Where the value of a variable comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarSource {
    /// A primary input of the behaviour.
    PrimaryInput,
    /// A compile-time constant (member of the set `C` of the paper).
    Constant(i64),
    /// The output of an operation.
    OpOutput(OpId),
}

/// A variable (value carried between clock boundaries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variable {
    /// Human readable name.
    pub name: String,
    /// Origin of the value.
    pub source: VarSource,
    /// Whether the value is a primary output of the behaviour.
    pub is_output: bool,
}

impl Variable {
    /// Whether the variable is a compile-time constant.
    pub fn is_constant(&self) -> bool {
        matches!(self.source, VarSource::Constant(_))
    }

    /// Whether the variable is a primary input.
    pub fn is_primary_input(&self) -> bool {
        matches!(self.source, VarSource::PrimaryInput)
    }
}

/// A data-flow operation with ordered input ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Operation {
    /// Human readable name.
    pub name: String,
    /// Operation kind.
    pub kind: OpKind,
    /// Input variables in port order (port 0 first).
    pub inputs: Vec<VarId>,
    /// Output variable.
    pub output: VarId,
}

/// A data-flow graph: variables, operations and their connecting edges.
///
/// The edge sets of the paper are derived views: [`Dfg::input_edges`] is
/// `Eᵢ` (triples `(v, o, l)` restricted to non-constant variables),
/// [`Dfg::constant_edges`] covers constant-fed ports and
/// [`Dfg::output_edges`] is `Eₒ`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dfg {
    pub(crate) name: String,
    pub(crate) vars: Vec<Variable>,
    pub(crate) ops: Vec<Operation>,
}

impl Dfg {
    /// The graph name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All variables, indexed by [`VarId::index`].
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// All operations, indexed by [`OpId::index`].
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// A single variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this graph.
    pub fn var(&self, var: VarId) -> &Variable {
        &self.vars[var.index()]
    }

    /// A single operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to this graph.
    pub fn op(&self, op: OpId) -> &Operation {
        &self.ops[op.index()]
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of operations.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Iterator over all variable ids.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len()).map(VarId)
    }

    /// Iterator over all operation ids.
    pub fn op_ids(&self) -> impl Iterator<Item = OpId> {
        (0..self.ops.len()).map(OpId)
    }

    /// The set `Eᵢ` of the paper: `(variable, operation, port)` triples for
    /// every non-constant operand.
    pub fn input_edges(&self) -> Vec<(VarId, OpId, PortIndex)> {
        let mut edges = Vec::new();
        for (oi, op) in self.ops.iter().enumerate() {
            for (port, &v) in op.inputs.iter().enumerate() {
                if !self.vars[v.index()].is_constant() {
                    edges.push((v, OpId(oi), port));
                }
            }
        }
        edges
    }

    /// `(constant variable, operation, port)` triples for constant operands.
    pub fn constant_edges(&self) -> Vec<(VarId, OpId, PortIndex)> {
        let mut edges = Vec::new();
        for (oi, op) in self.ops.iter().enumerate() {
            for (port, &v) in op.inputs.iter().enumerate() {
                if self.vars[v.index()].is_constant() {
                    edges.push((v, OpId(oi), port));
                }
            }
        }
        edges
    }

    /// The set `Eₒ` of the paper: `(operation, output variable)` pairs.
    pub fn output_edges(&self) -> Vec<(OpId, VarId)> {
        self.ops
            .iter()
            .enumerate()
            .map(|(oi, op)| (OpId(oi), op.output))
            .collect()
    }

    /// Operations (and ports) that read a variable.
    pub fn consumers(&self, var: VarId) -> Vec<(OpId, PortIndex)> {
        let mut out = Vec::new();
        for (oi, op) in self.ops.iter().enumerate() {
            for (port, &v) in op.inputs.iter().enumerate() {
                if v == var {
                    out.push((OpId(oi), port));
                }
            }
        }
        out
    }

    /// The operation that produces a variable, if any.
    pub fn producer(&self, var: VarId) -> Option<OpId> {
        match self.vars[var.index()].source {
            VarSource::OpOutput(op) => Some(op),
            _ => None,
        }
    }

    /// Primary input variables.
    pub fn primary_inputs(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| self.vars[v.index()].is_primary_input())
            .collect()
    }

    /// Constant variables (the set `C` of the paper).
    pub fn constants(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| self.vars[v.index()].is_constant())
            .collect()
    }

    /// Primary output variables.
    pub fn outputs(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| self.vars[v.index()].is_output)
            .collect()
    }

    /// Variables that must live in registers (everything except constants).
    pub fn register_variables(&self) -> Vec<VarId> {
        self.var_ids()
            .filter(|v| !self.vars[v.index()].is_constant())
            .collect()
    }

    /// Checks structural consistency of the graph.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found: dangling ids, arity mismatches,
    /// multiply-produced variables or a combinational cycle.
    pub fn validate(&self) -> Result<(), DfgError> {
        for (oi, op) in self.ops.iter().enumerate() {
            if op.inputs.len() != op.kind.arity() {
                return Err(DfgError::ArityMismatch {
                    operation: op.name.clone(),
                    expected: op.kind.arity(),
                    found: op.inputs.len(),
                });
            }
            for &v in op.inputs.iter().chain(std::iter::once(&op.output)) {
                if v.index() >= self.vars.len() {
                    return Err(DfgError::UnknownVariable { index: v.index() });
                }
            }
            match self.vars[op.output.index()].source {
                VarSource::OpOutput(p) if p.index() == oi => {}
                _ => {
                    return Err(DfgError::MultipleProducers {
                        variable: self.vars[op.output.index()].name.clone(),
                    })
                }
            }
        }
        for var in &self.vars {
            if let VarSource::OpOutput(op) = var.source {
                if op.index() >= self.ops.len() {
                    return Err(DfgError::UnknownOperation { index: op.index() });
                }
            }
        }
        self.topological_order().map(|_| ())
    }

    /// Operations in a topological order of the data dependences.
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Cyclic`] if the graph has a cycle.
    pub fn topological_order(&self) -> Result<Vec<OpId>, DfgError> {
        let n = self.ops.len();
        let mut indegree = vec![0usize; n];
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (oi, op) in self.ops.iter().enumerate() {
            for &v in &op.inputs {
                if let VarSource::OpOutput(p) = self.vars[v.index()].source {
                    successors[p.index()].push(oi);
                    indegree[oi] += 1;
                }
            }
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = queue.pop() {
            order.push(OpId(i));
            for &s in &successors[i] {
                indegree[s] -= 1;
                if indegree[s] == 0 {
                    queue.push(s);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(DfgError::Cyclic)
        }
    }
}

/// A DFG together with a completed schedule and module binding — the input
/// assumed by the paper's register / BIST register / interconnect assignment
/// (Section 2: "we consider DFGs in which scheduling and module assignment
/// have been completed").
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisInput {
    dfg: Dfg,
    schedule: Schedule,
    binding: Binding,
}

impl SynthesisInput {
    /// Bundles a DFG with its schedule and binding, checking consistency.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is malformed, the schedule or binding
    /// does not cover every operation, a data dependence is violated, two
    /// operations on the same module share a control step, or an operation is
    /// bound to a module of the wrong class.
    pub fn new(dfg: Dfg, schedule: Schedule, binding: Binding) -> Result<Self, DfgError> {
        dfg.validate()?;
        schedule.validate(&dfg)?;
        binding.validate(&dfg, &schedule)?;
        Ok(Self {
            dfg,
            schedule,
            binding,
        })
    }

    /// The underlying data-flow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// The schedule (operation → control step).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The module binding (operation → module).
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// The circuit name (taken from the DFG).
    pub fn name(&self) -> &str {
        self.dfg.name()
    }

    /// Number of control steps (the set `T` of the paper).
    pub fn num_control_steps(&self) -> u32 {
        self.schedule.num_steps()
    }

    /// Control step of an operation.
    pub fn step_of(&self, op: OpId) -> u32 {
        self.schedule.step_of(op)
    }

    /// Module of an operation.
    pub fn module_of(&self, op: OpId) -> ModuleId {
        self.binding.module_of(op)
    }

    /// Operations bound to a given module, in schedule order.
    pub fn ops_on_module(&self, module: ModuleId) -> Vec<OpId> {
        let mut ops: Vec<OpId> = self
            .dfg
            .op_ids()
            .filter(|&o| self.binding.module_of(o) == module)
            .collect();
        ops.sort_by_key(|&o| self.schedule.step_of(o));
        ops
    }

    /// Input edges `(v, o, l)` restricted to the operations of one module:
    /// the register-to-module connections the data path must provide.
    pub fn module_input_edges(&self, module: ModuleId) -> Vec<(VarId, OpId, PortIndex)> {
        self.dfg
            .input_edges()
            .into_iter()
            .filter(|&(_, o, _)| self.binding.module_of(o) == module)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    fn small_graph() -> Dfg {
        let mut b = DfgBuilder::new("small");
        let a = b.input("a");
        let c = b.input("c");
        let k = b.constant("k2", 2);
        let s = b.op(OpKind::Add, "s", a, c);
        let p = b.op(OpKind::Mul, "p", s, k);
        b.output(p);
        b.finish()
    }

    #[test]
    fn edges_and_lookup() {
        let g = small_graph();
        assert_eq!(g.num_vars(), 5);
        assert_eq!(g.num_ops(), 2);
        assert_eq!(g.input_edges().len(), 3); // a, c, s (constant excluded)
        assert_eq!(g.constant_edges().len(), 1);
        assert_eq!(g.output_edges().len(), 2);
        assert_eq!(g.primary_inputs().len(), 2);
        assert_eq!(g.constants().len(), 1);
        assert_eq!(g.outputs().len(), 1);
        assert_eq!(g.register_variables().len(), 4);
        let s = g.var_ids().find(|&v| g.var(v).name == "s").unwrap();
        assert_eq!(g.consumers(s).len(), 1);
        assert!(g.producer(s).is_some());
        assert!(g.validate().is_ok());
    }

    #[test]
    fn topological_order_respects_dependences() {
        let g = small_graph();
        let order = g.topological_order().unwrap();
        let pos: Vec<usize> = g
            .op_ids()
            .map(|o| order.iter().position(|&x| x == o).unwrap())
            .collect();
        // op 0 (add) produces the input of op 1 (mul)
        assert!(pos[0] < pos[1]);
    }

    #[test]
    fn op_kind_properties() {
        assert!(OpKind::Add.is_commutative());
        assert!(OpKind::Mul.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
        assert!(!OpKind::Less.is_commutative());
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Mul.to_string(), "mul");
    }

    #[test]
    fn cycle_detection() {
        // Build a malformed graph by hand with a cycle a -> op0 -> b -> op1 -> a.
        let mut g = Dfg {
            name: "cyclic".into(),
            vars: vec![
                Variable {
                    name: "a".into(),
                    source: VarSource::OpOutput(OpId(1)),
                    is_output: false,
                },
                Variable {
                    name: "b".into(),
                    source: VarSource::OpOutput(OpId(0)),
                    is_output: false,
                },
            ],
            ops: vec![],
        };
        g.ops.push(Operation {
            name: "o0".into(),
            kind: OpKind::Add,
            inputs: vec![VarId(0), VarId(0)],
            output: VarId(1),
        });
        g.ops.push(Operation {
            name: "o1".into(),
            kind: OpKind::Add,
            inputs: vec![VarId(1), VarId(1)],
            output: VarId(0),
        });
        assert_eq!(g.topological_order(), Err(DfgError::Cyclic));
        assert!(g.validate().is_err());
    }
}
