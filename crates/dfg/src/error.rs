//! Error type for DFG construction, scheduling and analysis.

use std::fmt;

/// Errors produced while building or analysing a data-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfgError {
    /// A variable id referenced a variable that does not exist.
    UnknownVariable {
        /// Offending index.
        index: usize,
    },
    /// An operation id referenced an operation that does not exist.
    UnknownOperation {
        /// Offending index.
        index: usize,
    },
    /// An operation was given the wrong number of input operands.
    ArityMismatch {
        /// Operation name.
        operation: String,
        /// Expected operand count.
        expected: usize,
        /// Provided operand count.
        found: usize,
    },
    /// A variable is produced by more than one operation.
    MultipleProducers {
        /// Variable name.
        variable: String,
    },
    /// The graph contains a combinational cycle.
    Cyclic,
    /// The schedule violates a data dependence (consumer before producer).
    DependenceViolation {
        /// Producing operation name.
        producer: String,
        /// Consuming operation name.
        consumer: String,
    },
    /// The schedule or binding does not cover every operation.
    IncompleteAssignment {
        /// What is missing ("schedule" or "binding").
        what: &'static str,
    },
    /// Two operations bound to the same module execute in the same step.
    ModuleConflict {
        /// Module index.
        module: usize,
        /// Control step of the clash.
        step: u32,
    },
    /// An operation is bound to a module of an incompatible class.
    ClassMismatch {
        /// Operation name.
        operation: String,
        /// Module index.
        module: usize,
    },
    /// Resource-constrained scheduling was given zero units of a class it needs.
    MissingResource {
        /// The class with no units.
        class: String,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::UnknownVariable { index } => write!(f, "unknown variable index {index}"),
            DfgError::UnknownOperation { index } => write!(f, "unknown operation index {index}"),
            DfgError::ArityMismatch {
                operation,
                expected,
                found,
            } => write!(
                f,
                "operation {operation} expects {expected} operands, got {found}"
            ),
            DfgError::MultipleProducers { variable } => {
                write!(f, "variable {variable} has more than one producer")
            }
            DfgError::Cyclic => write!(f, "data-flow graph contains a cycle"),
            DfgError::DependenceViolation { producer, consumer } => write!(
                f,
                "schedule places consumer {consumer} no later than its producer {producer}"
            ),
            DfgError::IncompleteAssignment { what } => {
                write!(f, "incomplete {what}: not every operation is covered")
            }
            DfgError::ModuleConflict { module, step } => write!(
                f,
                "module {module} executes two operations in control step {step}"
            ),
            DfgError::ClassMismatch { operation, module } => write!(
                f,
                "operation {operation} bound to module {module} of incompatible class"
            ),
            DfgError::MissingResource { class } => {
                write!(f, "no functional units of class {class} available")
            }
        }
    }
}

impl std::error::Error for DfgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_subject() {
        assert!(DfgError::UnknownVariable { index: 7 }
            .to_string()
            .contains('7'));
        assert!(DfgError::Cyclic.to_string().contains("cycle"));
        assert!(DfgError::ModuleConflict { module: 2, step: 3 }
            .to_string()
            .contains("control step 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DfgError>();
    }
}
