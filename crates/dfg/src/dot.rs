//! Graphviz export of data-flow graphs and scheduled DFGs.

use crate::graph::{Dfg, SynthesisInput};
use std::fmt::Write as _;

/// Renders a DFG in Graphviz DOT syntax (operations as boxes, variables as
/// ellipses).
pub fn to_dot(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for (i, var) in dfg.vars().iter().enumerate() {
        let shape = if var.is_constant() {
            "diamond"
        } else if var.is_primary_input() {
            "invhouse"
        } else if var.is_output {
            "house"
        } else {
            "ellipse"
        };
        let _ = writeln!(out, "  v{i} [label=\"{}\", shape={shape}];", var.name);
    }
    for (i, op) in dfg.ops().iter().enumerate() {
        let _ = writeln!(
            out,
            "  o{i} [label=\"{} ({})\", shape=box];",
            op.name,
            op.kind.mnemonic()
        );
        for (port, v) in op.inputs.iter().enumerate() {
            let _ = writeln!(out, "  v{} -> o{i} [label=\"p{port}\"];", v.index());
        }
        let _ = writeln!(out, "  o{i} -> v{};", op.output.index());
    }
    out.push_str("}\n");
    out
}

/// Renders a scheduled DFG with one cluster per control step, mirroring the
/// "grey clock boundary" drawing style of Figure 1 of the paper.
pub fn to_dot_scheduled(input: &SynthesisInput) -> String {
    let dfg = input.dfg();
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dfg.name());
    let _ = writeln!(out, "  rankdir=TB;");
    for step in 0..input.num_control_steps() {
        let _ = writeln!(out, "  subgraph cluster_step{step} {{");
        let _ = writeln!(out, "    label=\"control step {step}\";");
        for op in input.schedule().ops_in_step(step) {
            let module = input.module_of(op);
            let _ = writeln!(
                out,
                "    o{} [label=\"{} @ {}\", shape=box];",
                op.index(),
                dfg.op(op).name,
                input.binding().module(module).name
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for (i, var) in dfg.vars().iter().enumerate() {
        let _ = writeln!(out, "  v{i} [label=\"{}\"];", var.name);
    }
    for (i, op) in dfg.ops().iter().enumerate() {
        for v in &op.inputs {
            let _ = writeln!(out, "  v{} -> o{i};", v.index());
        }
        let _ = writeln!(out, "  o{i} -> v{};", op.output.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn dot_contains_every_node() {
        let input = benchmarks::figure1();
        let dot = to_dot(input.dfg());
        assert!(dot.starts_with("digraph"));
        for var in input.dfg().vars() {
            assert!(dot.contains(&var.name));
        }
        for op in input.dfg().ops() {
            assert!(dot.contains(&op.name));
        }
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn scheduled_dot_has_one_cluster_per_step() {
        let input = benchmarks::figure1();
        let dot = to_dot_scheduled(&input);
        for step in 0..input.num_control_steps() {
            assert!(dot.contains(&format!("cluster_step{step}")));
        }
    }
}
