//! # bist-dfg — scheduled data-flow graphs for high-level BIST synthesis
//!
//! This crate provides the front half of the high-level synthesis flow that
//! the DAC'99 ADVBIST paper assumes as its input: a data-flow graph (DFG)
//! whose operations have already been **scheduled** into control steps and
//! **bound** to functional modules. On top of the graph representation it
//! offers:
//!
//! * a fluent [`builder::DfgBuilder`] for constructing DFGs,
//! * ASAP / ALAP / resource-constrained list [`schedule`] algorithms,
//! * minimum-resource module [`binding`],
//! * variable [`lifetime`] analysis, the *horizontal crossing* register
//!   lower bound of the paper (Section 2) and the variable compatibility
//!   graph,
//! * a left-edge register [`allocate`] used by the heuristic baselines,
//! * the [`benchmarks`] used in the paper's evaluation (the Figure 1
//!   example, *tseng*, *paulin*, and the four HYPER-derived filters
//!   *fir6*, *iir3*, *dct4*, *wavelet6* — reconstructed from their textbook
//!   definitions, see DESIGN.md for the substitution note), plus a random
//!   DFG generator for stress tests,
//! * Graphviz [`dot`] export.
//!
//! # Example
//!
//! ```
//! use bist_dfg::benchmarks;
//! use bist_dfg::lifetime::LifetimeTable;
//!
//! # fn main() -> Result<(), bist_dfg::DfgError> {
//! let input = benchmarks::figure1();
//! let lifetimes = LifetimeTable::new(&input)?;
//! // Figure 1 of the paper needs three registers and two modules.
//! assert_eq!(lifetimes.min_registers(), 3);
//! assert_eq!(input.binding().num_modules(), 2);
//! # Ok(())
//! # }
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocate;
pub mod benchmarks;
pub mod binding;
pub mod builder;
pub mod dot;
pub mod error;
pub mod graph;
pub mod lifetime;
pub mod schedule;

pub use binding::{Binding, ModuleClass, ModuleId};
pub use builder::DfgBuilder;
pub use error::DfgError;
pub use graph::{
    Dfg, OpId, OpKind, Operation, PortIndex, SynthesisInput, VarId, VarSource, Variable,
};
pub use lifetime::{InputTiming, Lifetime, LifetimeTable};
pub use schedule::Schedule;
