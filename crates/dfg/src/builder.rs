//! Fluent construction of data-flow graphs.

use crate::graph::{Dfg, OpId, OpKind, Operation, VarId, VarSource, Variable};

/// Incremental builder for a [`Dfg`].
///
/// ```
/// use bist_dfg::{DfgBuilder, OpKind};
///
/// let mut b = DfgBuilder::new("mac");
/// let x = b.input("x");
/// let c = b.constant("c3", 3);
/// let acc = b.input("acc");
/// let prod = b.op(OpKind::Mul, "prod", x, c);
/// let sum = b.op(OpKind::Add, "sum", prod, acc);
/// b.output(sum);
/// let dfg = b.finish();
/// assert_eq!(dfg.num_ops(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DfgBuilder {
    dfg: Dfg,
}

impl DfgBuilder {
    /// Starts building a graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            dfg: Dfg {
                name: name.into(),
                vars: Vec::new(),
                ops: Vec::new(),
            },
        }
    }

    /// Adds a primary input variable.
    pub fn input(&mut self, name: impl Into<String>) -> VarId {
        self.push_var(name.into(), VarSource::PrimaryInput)
    }

    /// Adds a constant variable (member of the paper's set `C`).
    pub fn constant(&mut self, name: impl Into<String>, value: i64) -> VarId {
        self.push_var(name.into(), VarSource::Constant(value))
    }

    /// Adds a two-operand operation producing a fresh variable, and returns
    /// the output variable.
    pub fn op(
        &mut self,
        kind: OpKind,
        result_name: impl Into<String>,
        a: VarId,
        b: VarId,
    ) -> VarId {
        let op_id = OpId(self.dfg.ops.len());
        let result_name = result_name.into();
        let out = self.push_var(result_name.clone(), VarSource::OpOutput(op_id));
        self.dfg.ops.push(Operation {
            name: format!("{}_{}", kind.mnemonic(), result_name),
            kind,
            inputs: vec![a, b],
            output: out,
        });
        out
    }

    /// Marks a variable as a primary output.
    pub fn output(&mut self, var: VarId) -> &mut Self {
        self.dfg.vars[var.index()].is_output = true;
        self
    }

    /// Number of operations added so far.
    pub fn num_ops(&self) -> usize {
        self.dfg.num_ops()
    }

    /// Finishes and returns the graph.
    ///
    /// The graph is *not* validated here so that tests can construct
    /// deliberately broken graphs; call [`Dfg::validate`] (or build a
    /// [`crate::SynthesisInput`], which validates) before using it.
    pub fn finish(self) -> Dfg {
        self.dfg
    }

    fn push_var(&mut self, name: String, source: VarSource) -> VarId {
        let id = VarId(self.dfg.vars.len());
        self.dfg.vars.push(Variable {
            name,
            source,
            is_output: false,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_graph() {
        let mut b = DfgBuilder::new("g");
        let a = b.input("a");
        let c = b.constant("k", 7);
        let r = b.op(OpKind::Sub, "r", a, c);
        b.output(r);
        let g = b.finish();
        assert!(g.validate().is_ok());
        assert_eq!(g.name(), "g");
        assert_eq!(g.op(OpId(0)).kind, OpKind::Sub);
        assert_eq!(g.var(r).source, VarSource::OpOutput(OpId(0)));
        assert!(g.var(r).is_output);
    }

    #[test]
    fn operation_names_carry_the_mnemonic() {
        let mut b = DfgBuilder::new("g");
        let a = b.input("a");
        let x = b.op(OpKind::Mul, "x", a, a);
        let g = b.finish();
        assert!(g.op(g.producer(x).unwrap()).name.starts_with("mul_"));
    }
}
