//! Module binding: assigning operations to functional modules.
//!
//! The paper assumes a completed module assignment (Section 2). This module
//! provides the minimum-resource greedy binding used to prepare the benchmark
//! circuits, plus the [`ModuleClass`] taxonomy that decides which operations
//! may share a functional unit.

use crate::error::DfgError;
use crate::graph::{Dfg, OpId, OpKind};
use crate::schedule::Schedule;
use std::fmt;

/// Handle to a functional module of the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub(crate) usize);

impl ModuleId {
    /// Dense index of the module.
    pub fn index(self) -> usize {
        self.0
    }
}

/// The class of a functional module; operations can only be bound to a
/// module whose class supports their kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModuleClass {
    /// Adder.
    Adder,
    /// Subtractor.
    Subtractor,
    /// Combined adder/subtractor/comparator (ALU).
    Alu,
    /// Multiplier.
    Multiplier,
    /// Divider.
    Divider,
    /// Comparator.
    Comparator,
    /// Bitwise logic unit.
    Logic,
    /// Shifter.
    Shifter,
}

impl ModuleClass {
    /// The dedicated class for an operation kind (one class per kind family).
    pub fn of(kind: OpKind) -> Self {
        match kind {
            OpKind::Add => ModuleClass::Adder,
            OpKind::Sub => ModuleClass::Subtractor,
            OpKind::Mul => ModuleClass::Multiplier,
            OpKind::Div => ModuleClass::Divider,
            OpKind::Less => ModuleClass::Comparator,
            OpKind::And | OpKind::Or | OpKind::Xor => ModuleClass::Logic,
            OpKind::Shift => ModuleClass::Shifter,
        }
    }

    /// A classifier that merges additive operations (add, subtract, compare)
    /// into one ALU class, as several of the HLS benchmarks do.
    pub fn of_with_alu(kind: OpKind) -> Self {
        match kind {
            OpKind::Add | OpKind::Sub | OpKind::Less => ModuleClass::Alu,
            other => ModuleClass::of(other),
        }
    }

    /// Whether a module of this class can execute the given operation kind.
    pub fn supports(self, kind: OpKind) -> bool {
        match self {
            ModuleClass::Adder => matches!(kind, OpKind::Add),
            ModuleClass::Subtractor => matches!(kind, OpKind::Sub),
            ModuleClass::Alu => matches!(kind, OpKind::Add | OpKind::Sub | OpKind::Less),
            ModuleClass::Multiplier => matches!(kind, OpKind::Mul),
            ModuleClass::Divider => matches!(kind, OpKind::Div),
            ModuleClass::Comparator => matches!(kind, OpKind::Less),
            ModuleClass::Logic => matches!(kind, OpKind::And | OpKind::Or | OpKind::Xor),
            ModuleClass::Shifter => matches!(kind, OpKind::Shift),
        }
    }

    /// Whether the modules of this class compute a commutative function for
    /// every operation they support (relevant for Eq. (3) of the paper).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            ModuleClass::Adder | ModuleClass::Multiplier | ModuleClass::Logic
        )
    }
}

impl fmt::Display for ModuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModuleClass::Adder => "adder",
            ModuleClass::Subtractor => "subtractor",
            ModuleClass::Alu => "alu",
            ModuleClass::Multiplier => "multiplier",
            ModuleClass::Divider => "divider",
            ModuleClass::Comparator => "comparator",
            ModuleClass::Logic => "logic",
            ModuleClass::Shifter => "shifter",
        };
        f.write_str(s)
    }
}

/// Description of one functional module instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleInfo {
    /// Human readable name (for example `mul0`).
    pub name: String,
    /// Class of the module.
    pub class: ModuleClass,
    /// Number of input ports (all supported modules have two).
    pub num_inputs: usize,
}

/// A completed operation-to-module binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    module_of: Vec<ModuleId>,
    modules: Vec<ModuleInfo>,
}

impl Binding {
    /// Builds a binding from explicit data. `module_of` is indexed by
    /// [`OpId::index`].
    pub fn from_parts(module_of: Vec<ModuleId>, modules: Vec<ModuleInfo>) -> Self {
        Self { module_of, modules }
    }

    /// Greedy minimum-resource binding: operations of each class are assigned
    /// to the first module of that class that is idle in their control step,
    /// creating modules on demand. The resulting module count per class
    /// equals the maximum concurrency of that class, which the paper notes is
    /// the minimum (Section 2).
    pub fn minimal(
        dfg: &Dfg,
        schedule: &Schedule,
        classify: impl Fn(OpKind) -> ModuleClass,
    ) -> Self {
        let mut modules: Vec<ModuleInfo> = Vec::new();
        // busy[m] = set of steps the module is already used in
        let mut busy: Vec<Vec<u32>> = Vec::new();
        let mut module_of = vec![ModuleId(usize::MAX); dfg.num_ops()];

        let mut ops: Vec<OpId> = dfg.op_ids().collect();
        ops.sort_by_key(|&o| (schedule.step_of(o), o.index()));

        for op in ops {
            let class = classify(dfg.op(op).kind);
            let step = schedule.step_of(op);
            let slot =
                (0..modules.len()).find(|&m| modules[m].class == class && !busy[m].contains(&step));
            let m = match slot {
                Some(m) => m,
                None => {
                    let index = modules.len();
                    let count_same_class =
                        modules.iter().filter(|info| info.class == class).count();
                    modules.push(ModuleInfo {
                        name: format!("{class}{count_same_class}"),
                        class,
                        num_inputs: 2,
                    });
                    busy.push(Vec::new());
                    index
                }
            };
            busy[m].push(step);
            module_of[op.index()] = ModuleId(m);
        }
        Self { module_of, modules }
    }

    /// Number of modules.
    pub fn num_modules(&self) -> usize {
        self.modules.len()
    }

    /// Module of an operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn module_of(&self, op: OpId) -> ModuleId {
        self.module_of[op.index()]
    }

    /// Module descriptions, indexed by [`ModuleId::index`].
    pub fn modules(&self) -> &[ModuleInfo] {
        &self.modules
    }

    /// Description of one module.
    ///
    /// # Panics
    ///
    /// Panics if `module` is out of range.
    pub fn module(&self, module: ModuleId) -> &ModuleInfo {
        &self.modules[module.index()]
    }

    /// Iterator over all module ids.
    pub fn module_ids(&self) -> impl Iterator<Item = ModuleId> {
        (0..self.modules.len()).map(ModuleId)
    }

    /// Checks that the binding covers every operation, respects module
    /// classes and never double-books a module within a control step.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self, dfg: &Dfg, schedule: &Schedule) -> Result<(), DfgError> {
        if self.module_of.len() != dfg.num_ops() {
            return Err(DfgError::IncompleteAssignment { what: "binding" });
        }
        for op in dfg.op_ids() {
            let m = self.module_of[op.index()];
            if m.index() >= self.modules.len() {
                return Err(DfgError::IncompleteAssignment { what: "binding" });
            }
            if !self.modules[m.index()].class.supports(dfg.op(op).kind) {
                return Err(DfgError::ClassMismatch {
                    operation: dfg.op(op).name.clone(),
                    module: m.index(),
                });
            }
        }
        for step in 0..schedule.num_steps() {
            let mut seen = vec![false; self.modules.len()];
            for op in schedule.ops_in_step(step) {
                let m = self.module_of[op.index()].index();
                if seen[m] {
                    return Err(DfgError::ModuleConflict { module: m, step });
                }
                seen[m] = true;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use std::collections::BTreeMap;

    fn chain() -> (Dfg, Schedule) {
        // Four multiplies in a chain plus two adds that can overlap.
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let m1 = b.op(OpKind::Mul, "m1", a, c);
        let m2 = b.op(OpKind::Mul, "m2", m1, c);
        let m3 = b.op(OpKind::Mul, "m3", m2, c);
        let s1 = b.op(OpKind::Add, "s1", a, c);
        let s2 = b.op(OpKind::Add, "s2", s1, m3);
        b.output(s2);
        b.output(m3);
        let dfg = b.finish();
        let schedule = Schedule::asap(&dfg).unwrap();
        (dfg, schedule)
    }

    #[test]
    fn minimal_binding_matches_max_concurrency() {
        let (dfg, schedule) = chain();
        let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
        assert!(binding.validate(&dfg, &schedule).is_ok());
        // Multiplies are serialised by dependences: one multiplier suffices.
        let muls = binding
            .modules()
            .iter()
            .filter(|m| m.class == ModuleClass::Multiplier)
            .count();
        assert_eq!(muls, 1);
        let adders = binding
            .modules()
            .iter()
            .filter(|m| m.class == ModuleClass::Adder)
            .count();
        assert_eq!(adders, 1);
        assert_eq!(binding.num_modules(), 2);
    }

    #[test]
    fn class_support_table() {
        assert!(ModuleClass::Adder.supports(OpKind::Add));
        assert!(!ModuleClass::Adder.supports(OpKind::Sub));
        assert!(ModuleClass::Alu.supports(OpKind::Sub));
        assert!(ModuleClass::Alu.supports(OpKind::Less));
        assert!(ModuleClass::Multiplier.supports(OpKind::Mul));
        assert!(ModuleClass::Logic.supports(OpKind::Xor));
        assert!(!ModuleClass::Logic.supports(OpKind::Mul));
        assert_eq!(ModuleClass::of(OpKind::Less), ModuleClass::Comparator);
        assert_eq!(ModuleClass::of_with_alu(OpKind::Less), ModuleClass::Alu);
        assert!(ModuleClass::Multiplier.is_commutative());
        assert!(!ModuleClass::Alu.is_commutative());
    }

    #[test]
    fn binding_detects_class_mismatch() {
        let (dfg, schedule) = chain();
        let modules = vec![ModuleInfo {
            name: "add0".into(),
            class: ModuleClass::Adder,
            num_inputs: 2,
        }];
        let binding = Binding::from_parts(vec![ModuleId(0); dfg.num_ops()], modules);
        assert!(matches!(
            binding.validate(&dfg, &schedule),
            Err(DfgError::ClassMismatch { .. })
        ));
    }

    #[test]
    fn binding_detects_double_booking() {
        // Two independent adds in the same step forced onto one adder.
        let mut b = DfgBuilder::new("par");
        let a = b.input("a");
        let c = b.input("c");
        let s1 = b.op(OpKind::Add, "s1", a, c);
        let s2 = b.op(OpKind::Add, "s2", c, a);
        b.output(s1);
        b.output(s2);
        let dfg = b.finish();
        let schedule = Schedule::from_steps(vec![0, 0]);
        let modules = vec![ModuleInfo {
            name: "add0".into(),
            class: ModuleClass::Adder,
            num_inputs: 2,
        }];
        let binding = Binding::from_parts(vec![ModuleId(0), ModuleId(0)], modules);
        assert!(matches!(
            binding.validate(&dfg, &schedule),
            Err(DfgError::ModuleConflict { .. })
        ));
    }

    #[test]
    fn list_schedule_then_minimal_binding_is_consistent() {
        let (dfg, _) = chain();
        let limits = BTreeMap::from([(ModuleClass::Multiplier, 1), (ModuleClass::Adder, 1)]);
        let schedule = Schedule::list(&dfg, &limits, ModuleClass::of).unwrap();
        let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
        assert!(binding.validate(&dfg, &schedule).is_ok());
        assert_eq!(binding.num_modules(), 2);
    }
}
