//! Variable lifetimes, horizontal crossings and the compatibility graph.
//!
//! The register-assignment half of the paper rests on three notions from its
//! Section 2: a variable occupies a register on every *clock boundary* it
//! crosses, two variables whose boundary sets intersect are *incompatible*
//! (they need different registers), and the *maximal horizontal crossing*
//! (the largest number of variables alive on one boundary) is the minimum
//! number of registers.

use crate::error::DfgError;
use crate::graph::{SynthesisInput, VarId};

/// When a primary input is considered to enter the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputTiming {
    /// The input is loaded just before its first use (the convention that
    /// yields the minimum register counts reported in the paper).
    #[default]
    JustInTime,
    /// The input is loaded at control step 0 and must be held until its last
    /// use.
    FromStart,
}

/// The closed interval of clock boundaries on which a variable is alive.
///
/// Boundary `t` is the clock edge *entering* control step `t`; boundary
/// `num_steps` is the edge after the last step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// First boundary on which the value must be held in a register.
    pub birth: u32,
    /// Last boundary on which the value must be held in a register.
    pub death: u32,
}

impl Lifetime {
    /// Whether two lifetimes share a boundary (the variables are
    /// incompatible).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.birth <= other.death && other.birth <= self.death
    }

    /// Number of boundaries the value is alive on.
    pub fn span(&self) -> u32 {
        self.death - self.birth + 1
    }
}

/// Lifetimes of every register variable of a scheduled DFG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LifetimeTable {
    /// `None` for constants (they never occupy a register).
    lifetimes: Vec<Option<Lifetime>>,
    num_boundaries: u32,
    timing: InputTiming,
}

impl LifetimeTable {
    /// Computes lifetimes with the default ([`InputTiming::JustInTime`])
    /// input timing.
    ///
    /// # Errors
    ///
    /// Propagates validation errors of the synthesis input.
    pub fn new(input: &SynthesisInput) -> Result<Self, DfgError> {
        Self::with_timing(input, InputTiming::default())
    }

    /// Computes lifetimes with an explicit input timing convention.
    ///
    /// # Errors
    ///
    /// Propagates validation errors of the synthesis input.
    pub fn with_timing(input: &SynthesisInput, timing: InputTiming) -> Result<Self, DfgError> {
        let dfg = input.dfg();
        let num_steps = input.num_control_steps();
        let mut lifetimes = vec![None; dfg.num_vars()];
        for var in dfg.var_ids() {
            let info = dfg.var(var);
            if info.is_constant() {
                continue;
            }
            let consumers = dfg.consumers(var);
            let consumption_steps: Vec<u32> =
                consumers.iter().map(|&(op, _)| input.step_of(op)).collect();

            let birth = match dfg.producer(var) {
                Some(op) => input.step_of(op) + 1,
                None => match timing {
                    InputTiming::FromStart => 0,
                    InputTiming::JustInTime => consumption_steps.iter().copied().min().unwrap_or(0),
                },
            };
            let mut death = consumption_steps.iter().copied().max().unwrap_or(birth);
            if info.is_output {
                // Outputs must survive past the final control step so the
                // environment can read them.
                death = death.max(num_steps);
            }
            let death = death.max(birth);
            lifetimes[var.index()] = Some(Lifetime { birth, death });
        }
        Ok(Self {
            lifetimes,
            num_boundaries: num_steps + 1,
            timing,
        })
    }

    /// The input timing convention used.
    pub fn timing(&self) -> InputTiming {
        self.timing
    }

    /// Lifetime of a variable (`None` for constants).
    pub fn lifetime(&self, var: VarId) -> Option<Lifetime> {
        self.lifetimes[var.index()]
    }

    /// Number of clock boundaries (control steps + 1).
    pub fn num_boundaries(&self) -> u32 {
        self.num_boundaries
    }

    /// Whether two variables are incompatible (must use different registers).
    pub fn conflicts(&self, a: VarId, b: VarId) -> bool {
        if a == b {
            return false;
        }
        match (self.lifetimes[a.index()], self.lifetimes[b.index()]) {
            (Some(x), Some(y)) => x.overlaps(&y),
            _ => false,
        }
    }

    /// Variables alive on a given boundary.
    pub fn vars_at_boundary(&self, boundary: u32) -> Vec<VarId> {
        self.lifetimes
            .iter()
            .enumerate()
            .filter_map(|(i, lt)| {
                lt.filter(|lt| lt.birth <= boundary && boundary <= lt.death)
                    .map(|_| VarId(i))
            })
            .collect()
    }

    /// The horizontal crossing of a boundary: how many variables are alive.
    pub fn crossing(&self, boundary: u32) -> usize {
        self.vars_at_boundary(boundary).len()
    }

    /// The maximal horizontal crossing over all boundaries.
    pub fn max_horizontal_crossing(&self) -> usize {
        (0..=self.num_boundaries)
            .map(|b| self.crossing(b))
            .max()
            .unwrap_or(0)
    }

    /// Minimum number of registers needed for any register assignment
    /// (Section 2: equal to the maximal horizontal crossing; interval graphs
    /// are perfect so the bound is achievable).
    pub fn min_registers(&self) -> usize {
        self.max_horizontal_crossing()
    }

    /// All incompatible variable pairs (each pair once, `a < b`).
    pub fn incompatible_pairs(&self) -> Vec<(VarId, VarId)> {
        let n = self.lifetimes.len();
        let mut pairs = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.conflicts(VarId(a), VarId(b)) {
                    pairs.push((VarId(a), VarId(b)));
                }
            }
        }
        pairs
    }

    /// A maximum clique of mutually incompatible variables: the variables
    /// alive on the most crowded boundary. Used for the search-space
    /// reduction of Section 3.5 (pre-assigning them to distinct registers).
    pub fn maximum_clique(&self) -> Vec<VarId> {
        (0..=self.num_boundaries)
            .map(|b| self.vars_at_boundary(b))
            .max_by_key(|vars| vars.len())
            .unwrap_or_default()
    }

    /// Total number of DFG variables covered by the table (constants
    /// included, although they carry no lifetime).
    pub fn num_vars(&self) -> usize {
        self.lifetimes.len()
    }

    /// Variables that occupy a register (everything with a lifetime).
    pub fn register_vars(&self) -> Vec<VarId> {
        self.lifetimes
            .iter()
            .enumerate()
            .filter_map(|(i, lt)| lt.map(|_| VarId(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::binding::{Binding, ModuleClass};
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;
    use crate::schedule::Schedule;

    #[test]
    fn lifetime_overlap_predicate() {
        let a = Lifetime { birth: 0, death: 2 };
        let b = Lifetime { birth: 2, death: 3 };
        let c = Lifetime { birth: 3, death: 4 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert_eq!(a.span(), 3);
    }

    #[test]
    fn figure1_has_three_registers() {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        assert_eq!(table.min_registers(), 3);
        // Constants do not appear.
        for c in input.dfg().constants() {
            assert!(table.lifetime(c).is_none());
        }
        // Every register variable has a lifetime.
        assert_eq!(
            table.register_vars().len(),
            input.dfg().register_variables().len()
        );
    }

    #[test]
    fn from_start_timing_never_reduces_pressure() {
        let input = benchmarks::figure1();
        let jit = LifetimeTable::with_timing(&input, InputTiming::JustInTime).unwrap();
        let early = LifetimeTable::with_timing(&input, InputTiming::FromStart).unwrap();
        assert!(early.min_registers() >= jit.min_registers());
    }

    #[test]
    fn chained_values_do_not_conflict() {
        // a -> add -> t -> mul -> out ; a dies when t is born only if the
        // consumer runs right after, so check the exact boundaries.
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let c = b.input("c");
        let t = b.op(OpKind::Add, "t", a, c);
        let out = b.op(OpKind::Mul, "out", t, c);
        b.output(out);
        let dfg = b.finish();
        let schedule = Schedule::asap(&dfg).unwrap();
        let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of);
        let input = crate::graph::SynthesisInput::new(dfg, schedule, binding).unwrap();
        let table = LifetimeTable::new(&input).unwrap();
        let lt_a = table.lifetime(a).unwrap();
        let lt_t = table.lifetime(t).unwrap();
        // a is consumed in step 0 (boundary 0); t is born on boundary 1.
        assert_eq!(lt_a, Lifetime { birth: 0, death: 0 });
        assert_eq!(lt_t.birth, 1);
        assert!(!table.conflicts(a, t));
        // c is alive on boundaries 0..=1 and conflicts with both.
        assert!(table.conflicts(a, c));
        assert!(table.conflicts(t, c));
    }

    #[test]
    fn outputs_survive_to_the_end() {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        for out in input.dfg().outputs() {
            let lt = table.lifetime(out).unwrap();
            assert_eq!(lt.death, input.num_control_steps());
        }
    }

    #[test]
    fn max_clique_is_mutually_incompatible() {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let clique = table.maximum_clique();
        assert_eq!(clique.len(), table.min_registers());
        for (i, &a) in clique.iter().enumerate() {
            for &b in &clique[i + 1..] {
                assert!(table.conflicts(a, b));
            }
        }
    }

    #[test]
    fn crossing_counts_are_consistent() {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let max = (0..=table.num_boundaries())
            .map(|b| table.crossing(b))
            .max()
            .unwrap();
        assert_eq!(max, table.max_horizontal_crossing());
    }
}
