//! Operation scheduling: ASAP, ALAP and resource-constrained list scheduling.
//!
//! The paper assumes scheduling is already done; these algorithms are the
//! substrate we use to produce schedules for the benchmark DFGs (the authors
//! used HYPER for the filter benchmarks — see the substitution note in
//! DESIGN.md). All operations take a single control step.

use std::collections::BTreeMap;

use crate::binding::ModuleClass;
use crate::error::DfgError;
use crate::graph::{Dfg, OpId, OpKind, VarSource};

/// A mapping from operations to control steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<u32>,
    num_steps: u32,
}

impl Schedule {
    /// Builds a schedule from an explicit step per operation (in `OpId`
    /// order).
    pub fn from_steps(steps: Vec<u32>) -> Self {
        let num_steps = steps.iter().copied().max().map_or(0, |m| m + 1);
        Self { steps, num_steps }
    }

    /// The control step of an operation.
    ///
    /// # Panics
    ///
    /// Panics if `op` is out of range.
    pub fn step_of(&self, op: OpId) -> u32 {
        self.steps[op.index()]
    }

    /// Total number of control steps (the latency).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// The steps vector in `OpId` order.
    pub fn steps(&self) -> &[u32] {
        &self.steps
    }

    /// Operations scheduled in a given control step.
    pub fn ops_in_step(&self, step: u32) -> Vec<OpId> {
        self.steps
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == step)
            .map(|(i, _)| OpId(i))
            .collect()
    }

    /// Checks that the schedule covers the whole graph and respects data
    /// dependences (a consumer must run strictly after its producer, since
    /// every operation takes one full control step).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::IncompleteAssignment`] or
    /// [`DfgError::DependenceViolation`].
    pub fn validate(&self, dfg: &Dfg) -> Result<(), DfgError> {
        if self.steps.len() != dfg.num_ops() {
            return Err(DfgError::IncompleteAssignment { what: "schedule" });
        }
        for op in dfg.op_ids() {
            for &input in &dfg.op(op).inputs {
                if let VarSource::OpOutput(producer) = dfg.var(input).source {
                    if self.step_of(producer) >= self.step_of(op) {
                        return Err(DfgError::DependenceViolation {
                            producer: dfg.op(producer).name.clone(),
                            consumer: dfg.op(op).name.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// As-soon-as-possible schedule (unit delay, unconstrained resources).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Cyclic`] for cyclic graphs.
    pub fn asap(dfg: &Dfg) -> Result<Self, DfgError> {
        let order = dfg.topological_order()?;
        let mut steps = vec![0u32; dfg.num_ops()];
        for &op in &order {
            let mut earliest = 0;
            for &input in &dfg.op(op).inputs {
                if let VarSource::OpOutput(producer) = dfg.var(input).source {
                    earliest = earliest.max(steps[producer.index()] + 1);
                }
            }
            steps[op.index()] = earliest;
        }
        Ok(Self::from_steps(steps))
    }

    /// As-late-as-possible schedule for a given latency (number of steps).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::Cyclic`] for cyclic graphs, or
    /// [`DfgError::DependenceViolation`] if `latency` is smaller than the
    /// critical path.
    pub fn alap(dfg: &Dfg, latency: u32) -> Result<Self, DfgError> {
        let order = dfg.topological_order()?;
        let mut steps = vec![latency.saturating_sub(1); dfg.num_ops()];
        // Traverse in reverse topological order.
        for &op in order.iter().rev() {
            let mut latest = latency.saturating_sub(1);
            for (consumer, _) in dfg.consumers(dfg.op(op).output) {
                latest = latest.min(steps[consumer.index()].saturating_sub(1));
            }
            steps[op.index()] = latest;
        }
        let schedule = Self::from_steps(steps);
        schedule.validate(dfg)?;
        Ok(schedule)
    }

    /// Resource-constrained list scheduling.
    ///
    /// `limits` gives the number of functional units available for each
    /// module class; `classify` maps an operation kind to the class that
    /// executes it. Operations are prioritised by mobility (ALAP − ASAP, the
    /// most urgent first).
    ///
    /// # Errors
    ///
    /// Returns [`DfgError::MissingResource`] when an operation's class has a
    /// zero (or absent) limit, or [`DfgError::Cyclic`] for cyclic graphs.
    pub fn list(
        dfg: &Dfg,
        limits: &BTreeMap<ModuleClass, usize>,
        classify: impl Fn(OpKind) -> ModuleClass,
    ) -> Result<Self, DfgError> {
        let asap = Self::asap(dfg)?;
        let critical = asap.num_steps();
        // ALAP with generous latency for mobility computation only.
        let alap = Self::alap(dfg, critical.max(1))?;

        for op in dfg.op_ids() {
            let class = classify(dfg.op(op).kind);
            if limits.get(&class).copied().unwrap_or(0) == 0 {
                return Err(DfgError::MissingResource {
                    class: class.to_string(),
                });
            }
        }

        let n = dfg.num_ops();
        let mut steps = vec![u32::MAX; n];
        let mut scheduled = vec![false; n];
        let mut remaining = n;
        let mut step = 0u32;
        while remaining > 0 {
            let mut used: BTreeMap<ModuleClass, usize> = BTreeMap::new();
            // Ready operations: all producers scheduled in earlier steps.
            let mut ready: Vec<OpId> = dfg
                .op_ids()
                .filter(|&op| {
                    !scheduled[op.index()]
                        && dfg.op(op).inputs.iter().all(|&v| match dfg.var(v).source {
                            VarSource::OpOutput(p) => {
                                scheduled[p.index()] && steps[p.index()] < step
                            }
                            _ => true,
                        })
                })
                .collect();
            // Priority: smallest mobility first, then ASAP order.
            ready.sort_by_key(|&op| {
                let mobility = alap.step_of(op).saturating_sub(asap.step_of(op));
                (mobility, asap.step_of(op), op.index())
            });
            for op in ready {
                let class = classify(dfg.op(op).kind);
                let limit = limits.get(&class).copied().unwrap_or(0);
                let in_use = used.entry(class).or_insert(0);
                if *in_use < limit {
                    *in_use += 1;
                    steps[op.index()] = step;
                    scheduled[op.index()] = true;
                    remaining -= 1;
                }
            }
            step += 1;
            // Safety valve: with at least one unit per needed class the loop
            // always terminates, but guard against pathological inputs.
            if step as usize > 4 * n + 4 {
                return Err(DfgError::IncompleteAssignment { what: "schedule" });
            }
        }
        Ok(Self::from_steps(steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::ModuleClass;
    use crate::builder::DfgBuilder;
    use crate::graph::OpKind;

    /// A small diamond: two independent multiplies feeding an add.
    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let a = b.input("a");
        let c = b.input("c");
        let d = b.input("d");
        let e = b.input("e");
        let m1 = b.op(OpKind::Mul, "m1", a, c);
        let m2 = b.op(OpKind::Mul, "m2", d, e);
        let s = b.op(OpKind::Add, "s", m1, m2);
        b.output(s);
        b.finish()
    }

    #[test]
    fn asap_respects_dependences() {
        let g = diamond();
        let s = Schedule::asap(&g).unwrap();
        assert_eq!(s.step_of(OpId(0)), 0);
        assert_eq!(s.step_of(OpId(1)), 0);
        assert_eq!(s.step_of(OpId(2)), 1);
        assert_eq!(s.num_steps(), 2);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn alap_pushes_operations_late() {
        let g = diamond();
        let s = Schedule::alap(&g, 3).unwrap();
        assert_eq!(s.step_of(OpId(2)), 2);
        assert_eq!(s.step_of(OpId(0)), 1);
        assert_eq!(s.step_of(OpId(1)), 1);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn alap_rejects_too_small_latency() {
        let g = diamond();
        assert!(Schedule::alap(&g, 1).is_err());
    }

    #[test]
    fn list_scheduling_respects_resource_limits() {
        let g = diamond();
        let mut limits = BTreeMap::new();
        limits.insert(ModuleClass::Multiplier, 1);
        limits.insert(ModuleClass::Adder, 1);
        let s = Schedule::list(&g, &limits, ModuleClass::of).unwrap();
        assert!(s.validate(&g).is_ok());
        // Only one multiplier: the two multiplies cannot share a step.
        assert_ne!(s.step_of(OpId(0)), s.step_of(OpId(1)));
        assert_eq!(s.num_steps(), 3);

        // With two multipliers the critical path of two steps is reachable.
        limits.insert(ModuleClass::Multiplier, 2);
        let s = Schedule::list(&g, &limits, ModuleClass::of).unwrap();
        assert_eq!(s.num_steps(), 2);
    }

    #[test]
    fn list_scheduling_requires_resources() {
        let g = diamond();
        let limits = BTreeMap::from([(ModuleClass::Multiplier, 1)]);
        assert!(matches!(
            Schedule::list(&g, &limits, ModuleClass::of),
            Err(DfgError::MissingResource { .. })
        ));
    }

    #[test]
    fn ops_in_step_partition_the_graph() {
        let g = diamond();
        let s = Schedule::asap(&g).unwrap();
        let total: usize = (0..s.num_steps()).map(|t| s.ops_in_step(t).len()).sum();
        assert_eq!(total, g.num_ops());
    }

    #[test]
    fn invalid_schedule_detected() {
        let g = diamond();
        // Consumer in the same step as its producer.
        let s = Schedule::from_steps(vec![0, 0, 0]);
        assert!(matches!(
            s.validate(&g),
            Err(DfgError::DependenceViolation { .. })
        ));
        // Wrong length.
        let s = Schedule::from_steps(vec![0, 1]);
        assert!(matches!(
            s.validate(&g),
            Err(DfgError::IncompleteAssignment { .. })
        ));
    }
}
