//! Left-edge register allocation.
//!
//! This is the classical interval-graph colouring used by the heuristic
//! baselines (RALLOC, BITS, ADVAN) as their starting point, and by the
//! ADVBIST search-space reduction to warm-start the ILP: variables sorted by
//! birth boundary are packed greedily into the first register whose previous
//! occupant has already died. Because lifetime intervals form an interval
//! graph the result uses exactly `max_horizontal_crossing` registers — the
//! paper's minimum.

use crate::graph::VarId;
use crate::lifetime::LifetimeTable;

/// A complete variable-to-register assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegisterAssignment {
    register_of: Vec<Option<usize>>,
    num_registers: usize,
}

impl RegisterAssignment {
    /// Builds an assignment from explicit data (`None` for constants).
    pub fn from_parts(register_of: Vec<Option<usize>>, num_registers: usize) -> Self {
        Self {
            register_of,
            num_registers,
        }
    }

    /// Register index of a variable (`None` for constants).
    pub fn register_of(&self, var: VarId) -> Option<usize> {
        self.register_of[var.index()]
    }

    /// Number of registers used.
    pub fn num_registers(&self) -> usize {
        self.num_registers
    }

    /// Variables assigned to a given register.
    pub fn vars_in_register(&self, register: usize) -> Vec<VarId> {
        self.register_of
            .iter()
            .enumerate()
            .filter_map(|(i, r)| (*r == Some(register)).then_some(VarId(i)))
            .collect()
    }

    /// Checks that no two incompatible variables share a register.
    pub fn is_valid(&self, table: &LifetimeTable) -> bool {
        for r in 0..self.num_registers {
            let vars = self.vars_in_register(r);
            for (i, &a) in vars.iter().enumerate() {
                for &b in &vars[i + 1..] {
                    if table.conflicts(a, b) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The dense register map (`None` for constants), indexed by
    /// [`VarId::index`].
    pub fn register_map(&self) -> &[Option<usize>] {
        &self.register_of
    }
}

/// Runs the left-edge algorithm on a lifetime table.
pub fn left_edge(table: &LifetimeTable) -> RegisterAssignment {
    let mut vars = table.register_vars();
    vars.sort_by_key(|&v| {
        let lt = table.lifetime(v).expect("register var has lifetime");
        (lt.birth, lt.death, v.index())
    });

    // last_death[r] = death boundary of the most recent occupant of register r
    let mut last_death: Vec<Option<u32>> = Vec::new();
    let mut register_of = vec![None; table.num_vars()];

    for v in vars {
        let lt = table.lifetime(v).expect("register var has lifetime");
        let slot = (0..last_death.len()).find(|&r| match last_death[r] {
            Some(death) => death < lt.birth,
            None => true,
        });
        let r = match slot {
            Some(r) => r,
            None => {
                last_death.push(None);
                last_death.len() - 1
            }
        };
        last_death[r] = Some(lt.death);
        register_of[v.index()] = Some(r);
    }

    RegisterAssignment {
        register_of,
        num_registers: last_death.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;
    use crate::lifetime::LifetimeTable;

    #[test]
    fn left_edge_is_optimal_on_figure1() {
        let input = benchmarks::figure1();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        assert_eq!(assignment.num_registers(), table.min_registers());
        assert!(assignment.is_valid(&table));
    }

    #[test]
    fn left_edge_is_optimal_on_all_benchmarks() {
        for (name, input) in benchmarks::all() {
            let table = LifetimeTable::new(&input).unwrap();
            let assignment = left_edge(&table);
            assert_eq!(
                assignment.num_registers(),
                table.min_registers(),
                "left-edge not optimal on {name}"
            );
            assert!(assignment.is_valid(&table), "invalid packing on {name}");
        }
    }

    #[test]
    fn every_register_variable_is_assigned() {
        let input = benchmarks::paulin();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        for v in table.register_vars() {
            assert!(assignment.register_of(v).is_some());
        }
        for c in input.dfg().constants() {
            assert!(assignment.register_of(c).is_none());
        }
    }

    #[test]
    fn register_partition_covers_variables_once() {
        let input = benchmarks::tseng();
        let table = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&table);
        let total: usize = (0..assignment.num_registers())
            .map(|r| assignment.vars_in_register(r).len())
            .sum();
        assert_eq!(total, table.register_vars().len());
    }
}
