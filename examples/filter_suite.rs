//! The four HYPER-derived filter benchmarks (fir6, iir3, dct4, wavelet6):
//! ADVBIST against the three heuristic baselines at the maximal test-session
//! count — a runnable slice of Table 3.
//!
//! Run with (budget in seconds per ILP solve, default 5):
//! ```text
//! BIST_TIME_LIMIT_SECS=10 cargo run --release --example filter_suite
//! ```

use std::error::Error;
use std::time::Duration;

use advbist::baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::report::DesignReport;
use advbist::dfg::benchmarks;
use advbist::Budget;

fn budget() -> Result<Budget, Box<dyn Error>> {
    Ok(Budget::from_env()?.or_time(Duration::from_secs(5)))
}

fn main() -> Result<(), Box<dyn Error>> {
    let config = SynthesisConfig::budgeted(budget()?);
    let circuits = vec![
        ("fir6", benchmarks::fir6()),
        ("iir3", benchmarks::iir3()),
        ("dct4", benchmarks::dct4()),
        ("wavelet6", benchmarks::wavelet6()),
    ];

    println!("{}", DesignReport::table3_header());
    for (name, input) in circuits {
        let k = input.binding().num_modules();
        let reference = reference::synthesize_reference(&input, &config)?;
        let reference_area = reference.area.total();

        let advbist = synthesis::synthesize_bist(&input, k, &config)?;
        println!("{}", advbist.report("ADVBIST", name, reference_area));

        let advan = synthesize_advan(&input, k, &config.cost)?;
        println!("{}", advan.report("ADVAN", name, reference_area));

        let ralloc = synthesize_ralloc(&input, k, &config.cost)?;
        println!("{}", ralloc.report("RALLOC", name, reference_area));

        let bits = synthesize_bits(&input, k, &config.cost)?;
        println!("{}", bits.report("BITS", name, reference_area));
        println!();
    }
    println!("Lower OH(%) is better; ADVBIST should win or tie on every circuit (Table 3).");
    Ok(())
}
