//! Quickstart: synthesise the paper's Figure 1 example end to end.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::error::Error;

use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::test_plan::TpgSource;
use advbist::dfg::benchmarks;

fn main() -> Result<(), Box<dyn Error>> {
    // The running example of the paper: 4 operations, 8 variables, scheduled
    // into 4 control steps on one adder and one multiplier.
    let input = benchmarks::figure1();
    println!(
        "circuit {}: {} operations, {} variables, {} modules, {} control steps",
        input.name(),
        input.dfg().num_ops(),
        input.dfg().num_vars(),
        input.binding().num_modules(),
        input.num_control_steps()
    );

    // Exact solving is fine at this size (about a hundred binary variables).
    let config = SynthesisConfig::exact();

    // Reference (non-BIST) data path: the overhead baseline.
    let reference = reference::synthesize_reference(&input, &config)?;
    println!(
        "\nreference data path: {} registers, {} mux inputs, {} transistors",
        reference.datapath.num_registers(),
        reference.area.mux_inputs,
        reference.area.total()
    );

    // One self-testable design per k-test session.
    for k in 1..=input.binding().num_modules() {
        let design = synthesis::synthesize_bist(&input, k, &config)?;
        println!(
            "\n{k}-test session design ({}):",
            if design.optimal {
                "optimal"
            } else {
                "best found"
            }
        );
        println!(
            "  area {} transistors, overhead {:.1}%",
            design.area.total(),
            design.overhead_percent(reference.area.total())
        );
        for r in 0..design.datapath.num_registers() {
            println!("  R{r}: {}", design.datapath.register_kind(r));
        }
        for (p, session) in design.plan.sessions.iter().enumerate() {
            for &m in &session.modules {
                let tpgs: Vec<String> = (0..design.datapath.modules()[m].num_inputs)
                    .map(|port| match session.tpg.get(&(m, port)) {
                        Some(TpgSource::Register(r)) => format!("R{r}"),
                        Some(TpgSource::ConstantGenerator) => "dedicated".into(),
                        None => "-".into(),
                    })
                    .collect();
                println!(
                    "  sub-session {p}: test {} with TPGs [{}] and SR R{}",
                    design.datapath.modules()[m].name,
                    tpgs.join(", "),
                    session.sr[&m]
                );
            }
        }
    }
    Ok(())
}
