//! The job-service front door: a batch of synthesis jobs with per-job
//! budgets, deadlines and cancellation, answered in submission order —
//! followed by an interrupt → resume round trip through the service's
//! fingerprint-keyed solve cache.
//!
//! Run with:
//! ```text
//! cargo run --release --example service_batch
//! ```

use std::error::Error;
use std::sync::Arc;
use std::time::Duration;

use advbist::core::SynthesisConfig;
use advbist::dfg::benchmarks;
use advbist::service::{JobService, SolveCache, SynthesisJob};
use advbist::Budget;

fn main() -> Result<(), Box<dyn Error>> {
    let mut service = JobService::new().with_workers(2);

    // Deterministic node budget per solve for the small circuits...
    for (name, input) in [
        ("figure1", benchmarks::figure1()),
        ("tseng", benchmarks::tseng()),
    ] {
        service.submit(
            SynthesisJob::new(name, input)
                .with_config(SynthesisConfig::default())
                .with_budget(Budget::nodes(500)),
        );
    }
    // ...a wall-clock budget and a k-range restriction for the larger one...
    service.submit(
        SynthesisJob::new("paulin k<=2", benchmarks::paulin())
            .with_sessions(1..=2)
            .with_budget(Budget::time(Duration::from_millis(500))),
    );
    // ...and one job cancelled before the batch even starts, to show that
    // cancellation is per job and the rest of the batch is unaffected.
    let doomed = service.submit(SynthesisJob::new("cancelled demo", benchmarks::fir6()));
    doomed.cancel();

    for report in service.run() {
        println!(
            "{:<14} {:?} ({} rows, {:.2}s)",
            report.name,
            report.outcome,
            report.rows.len(),
            report.seconds
        );
        for row in &report.rows {
            println!(
                "    k={}: area {:>5} transistors, {:>6} nodes{}",
                row.k,
                row.area,
                row.nodes,
                if row.optimal { ", optimal" } else { "" }
            );
        }
    }

    // Interrupt → resume through the shared solve cache: a node-budgeted
    // solve with snapshot capture on stops mid-tree and parks its frontier
    // in the cache; resubmitting the same instance under an open budget
    // resumes that tree instead of starting cold.
    println!("\ninterrupt -> resume (tseng k=1):");
    let cache = Arc::new(SolveCache::new(SolveCache::DEFAULT_CAPACITY_MB));

    let mut first = JobService::new().with_cache(cache.clone());
    first.submit(
        SynthesisJob::new("interrupted", benchmarks::tseng())
            .with_config(SynthesisConfig::exact())
            .with_sessions(1..=1)
            .with_budget(Budget::nodes(200).with_snapshot(true)),
    );
    let interrupted = &first.run()[0];
    println!(
        "    interrupted after {:>4} nodes, snapshot captured: {}",
        interrupted.rows[0].nodes, interrupted.snapshot_captured
    );

    let mut second = JobService::new().with_cache(cache);
    second.submit(
        SynthesisJob::new("resumed", benchmarks::tseng())
            .with_config(SynthesisConfig::exact())
            .with_sessions(1..=1),
    );
    let resumed = &second.run()[0];
    let row = &resumed.rows[0];
    println!(
        "    resumed from the cache ({} hit), finished at {:>4} total nodes{}",
        resumed.cache_hits,
        row.nodes,
        if row.optimal { ", optimal" } else { "" }
    );
    Ok(())
}
