//! Bring your own behaviour: build a DFG with the builder API, schedule and
//! bind it, and synthesise a self-testable data path for it.
//!
//! The example behaviour is a small complex-number multiply-accumulate:
//!
//! ```text
//! re = ar*br - ai*bi + cr
//! im = ar*bi + ai*br + ci
//! ```
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_dfg
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::time::Duration;

use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::dfg::lifetime::LifetimeTable;
use advbist::dfg::{Binding, DfgBuilder, ModuleClass, OpKind, Schedule, SynthesisInput};

fn build_complex_mac() -> Result<SynthesisInput, Box<dyn Error>> {
    let mut b = DfgBuilder::new("complex_mac");
    let ar = b.input("ar");
    let ai = b.input("ai");
    let br = b.input("br");
    let bi = b.input("bi");
    let cr = b.input("cr");
    let ci = b.input("ci");

    let p0 = b.op(OpKind::Mul, "p0", ar, br);
    let p1 = b.op(OpKind::Mul, "p1", ai, bi);
    let p2 = b.op(OpKind::Mul, "p2", ar, bi);
    let p3 = b.op(OpKind::Mul, "p3", ai, br);
    let d = b.op(OpKind::Sub, "d", p0, p1);
    let s = b.op(OpKind::Add, "s", p2, p3);
    let re = b.op(OpKind::Add, "re", d, cr);
    let im = b.op(OpKind::Add, "im", s, ci);
    b.output(re);
    b.output(im);
    let dfg = b.finish();

    // Two multipliers and one ALU, scheduled by the resource-constrained list
    // scheduler; the minimal binding then instantiates exactly three modules.
    let limits = BTreeMap::from([(ModuleClass::Multiplier, 2), (ModuleClass::Alu, 1)]);
    let schedule = Schedule::list(&dfg, &limits, ModuleClass::of_with_alu)?;
    let binding = Binding::minimal(&dfg, &schedule, ModuleClass::of_with_alu);
    Ok(SynthesisInput::new(dfg, schedule, binding)?)
}

fn main() -> Result<(), Box<dyn Error>> {
    let input = build_complex_mac()?;
    let lifetimes = LifetimeTable::new(&input)?;
    println!(
        "complex MAC: {} ops in {} steps on {} modules; at least {} registers",
        input.dfg().num_ops(),
        input.num_control_steps(),
        input.binding().num_modules(),
        lifetimes.min_registers()
    );

    let config = SynthesisConfig::time_boxed(Duration::from_secs(5));
    let reference = reference::synthesize_reference(&input, &config)?;
    println!("reference area: {} transistors", reference.area.total());

    for design in synthesis::synthesize_all_sessions(&input, &config)? {
        println!(
            "k = {}: area {} transistors, overhead {:.1}%, register kinds: {}",
            design.sessions,
            design.area.total(),
            design.overhead_percent(reference.area.total()),
            (0..design.datapath.num_registers())
                .map(|r| design.datapath.register_kind(r).to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    Ok(())
}
