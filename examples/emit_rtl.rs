//! From ILP solution to RTL: synthesise Figure 1 at k = 2, emit the BIST
//! netlist as Verilog, then simulate both sub-test sessions cycle by cycle
//! and print what each one proves.
//!
//! Run with:
//! ```text
//! cargo run --release --example emit_rtl
//! ```

use std::error::Error;

use advbist::core::{synthesis, SynthesisConfig};
use advbist::dfg::benchmarks;
use advbist::rtl::{emit_bist_netlist, to_verilog, validate_simulated, SimConfig};

fn main() -> Result<(), Box<dyn Error>> {
    // Solve the paper's running example for a 2-test-session BIST design.
    let input = benchmarks::figure1();
    let config = SynthesisConfig::exact();
    let design = synthesis::synthesize_bist(&input, 2, &config)?;
    println!(
        "figure1, k = 2: {} transistors ({})",
        design.area.total(),
        if design.optimal {
            "optimal"
        } else {
            "best found"
        }
    );

    // Lower the solved data path + test plan into a structural netlist. The
    // netlist carries one session-control record per sub-test session:
    // register modes (generate / compact), mux selects, and the signature
    // register of every module under test.
    let netlist = emit_bist_netlist(&design.datapath, &design.plan)?;
    println!(
        "\nnetlist: {} registers, {} modules, {} muxes, fingerprint {:#018x}",
        netlist.registers().len(),
        netlist.modules().len(),
        netlist.muxes().len(),
        netlist.fingerprint()
    );

    // The same structure as synthesisable Verilog.
    println!("\n--- Verilog ---\n{}", to_verilog(&netlist));

    // Prove the test plan works: simulate every sub-test session cycle by
    // cycle (LFSR patterns in, MISR signatures out) and fail unless every
    // module is exercised with distinct patterns and observed in its
    // signature register.
    let sim = SimConfig::default();
    let report = validate_simulated(&design.datapath, &design.plan, &sim)?;
    println!("--- Simulated coverage ({} cycles/session) ---", sim.cycles);
    for session in &report.sessions {
        println!("sub-session {}:", session.session);
        for coverage in &session.coverage {
            println!(
                "  module {} ({}): {} distinct input patterns over {} active cycles, \
                 signature {:#x} in R{}",
                coverage.module,
                netlist.modules()[coverage.module].name,
                coverage.distinct_patterns,
                coverage.cycles_active,
                session.signatures[&coverage.signature_register],
                coverage.signature_register
            );
        }
    }
    Ok(())
}
