//! The paulin (HAL differential equation solver) benchmark: the area /
//! test-time trade-off of Table 2.
//!
//! A k-test session with a small k tests many modules concurrently (short
//! test time, more test hardware); a large k serialises testing (longer test
//! time, less hardware). ADVBIST emits one area-minimal design per k so the
//! designer can pick a point on that curve.
//!
//! Run with (budget in seconds per ILP solve, default 5):
//! ```text
//! BIST_TIME_LIMIT_SECS=10 cargo run --release --example diffeq_bist
//! ```

use std::error::Error;
use std::time::Duration;

use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::dfg::benchmarks;
use advbist::Budget;

fn budget() -> Result<Budget, Box<dyn Error>> {
    Ok(Budget::from_env()?.or_time(Duration::from_secs(5)))
}

fn main() -> Result<(), Box<dyn Error>> {
    let input = benchmarks::paulin();
    let config = SynthesisConfig::budgeted(budget()?);

    println!(
        "paulin: {} operations on {} modules, {} control steps",
        input.dfg().num_ops(),
        input.binding().num_modules(),
        input.num_control_steps()
    );

    let reference = reference::synthesize_reference(&input, &config)?;
    println!(
        "reference area: {} transistors ({} registers, {} mux inputs)\n",
        reference.area.total(),
        reference.datapath.num_registers(),
        reference.area.mux_inputs
    );

    println!(
        "{:>2} {:>10} {:>12} {:>9} {:>9} {:>7}",
        "k", "area", "overhead(%)", "time(s)", "optimal", "CBILBOs"
    );
    for design in synthesis::synthesize_all_sessions(&input, &config)? {
        println!(
            "{:>2} {:>10} {:>12.1} {:>9.2} {:>9} {:>7}",
            design.sessions,
            design.area.total(),
            design.overhead_percent(reference.area.total()),
            design.stats.time.as_secs_f64(),
            if design.optimal { "yes" } else { "no" },
            design
                .area
                .count(advbist::datapath::TestRegisterKind::Cbilbo)
        );
    }
    println!("\nA larger k (more sub-test sessions) trades test time for area, as in Table 2.");
    Ok(())
}
