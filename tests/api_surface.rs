//! Public-API smoke test: the facade's session/service surface must stay
//! re-exported, and the deprecated `Branching` alias must not be used
//! anywhere in the repository's own code.
//!
//! This is the offline-registry substitute for a `cargo-public-api` check:
//! an accidental removal of a facade re-export fails tier-1 instead of
//! surfacing in downstream builds.

use std::path::{Path, PathBuf};

// Every name here must resolve from the facade root — that *is* the test.
use advbist::service::{JobHandle, JobOutcome, JobReport, JobRow, JobService, SynthesisJob};
use advbist::{Budget, BudgetError, CancelToken, SolveEvent, SolveSession};

#[test]
fn facade_re_exports_resolve_and_are_usable() {
    // Budget: construction and combinators.
    let budget: Budget = Budget::nodes(10).or_time(std::time::Duration::from_secs(1));
    assert_eq!(budget.node_limit, Some(10));
    let parse_failure: Result<Budget, BudgetError> =
        Budget::from_lookup(|key| (key == "BIST_NODE_LIMIT").then(|| "bogus".to_string()));
    assert!(parse_failure.is_err());

    // CancelToken: shared flag semantics.
    let token: CancelToken = CancelToken::new();
    assert!(!token.clone().is_cancelled());

    // SolveSession over an ILP model, with an event observer.
    let mut model = advbist::ilp::Model::new("surface");
    let x = model.add_binary("x");
    model.set_objective([(x, 1.0)], advbist::ilp::Sense::Maximize);
    let mut saw_done = false;
    let solution = SolveSession::with_config(&model, advbist::ilp::SolverConfig::exact())
        .on_event(|event| {
            if matches!(event, SolveEvent::Done { .. }) {
                saw_done = true;
            }
        })
        .solve()
        .expect("solve");
    assert!(solution.is_optimal());
    assert!(saw_done);

    // Service types: construct without running anything heavy.
    let mut service: JobService = JobService::new().with_workers(1);
    assert!(service.is_empty());
    let handle: JobHandle = service.submit(SynthesisJob::new(
        "smoke",
        advbist::dfg::benchmarks::figure1(),
    ));
    assert_eq!(handle.index(), 0);
    assert_eq!(service.len(), 1);
    let _outcome_type: JobOutcome = JobOutcome::Completed;
    let _row_type: Option<JobRow> = None;
    let _report_type: Option<JobReport> = None;
}

/// Collects every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Skip build output; everything else under the repo is ours.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn deprecated_branching_alias_is_not_used_in_repo() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    // The only allowed occurrences of the old name: its deprecated alias
    // definition in the ilp crate root, and this scanner itself.
    let allowed = [
        root.join("crates/ilp/src/lib.rs"),
        root.join("tests/api_surface.rs"),
    ];
    let mut files = Vec::new();
    for dir in ["src", "crates", "tests", "examples"] {
        rust_files(&root.join(dir), &mut files);
    }
    assert!(
        files.len() > 40,
        "scanner found too few sources ({}) — wrong root?",
        files.len()
    );
    let mut offenders = Vec::new();
    for file in files {
        if allowed.contains(&file) {
            continue;
        }
        let text = std::fs::read_to_string(&file).expect("readable source");
        for (number, line) in text.lines().enumerate() {
            // Prose in comments may use the word; only code references count.
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            // Word-boundary match without a regex dependency.
            let mut rest = line;
            let mut column = 0;
            while let Some(pos) = rest.find("Branching") {
                let before = line[..column + pos].chars().next_back();
                let after = rest[pos + "Branching".len()..].chars().next();
                let word_start = !before.is_some_and(|c| c.is_alphanumeric() || c == '_');
                let word_end = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
                if word_start && word_end {
                    offenders.push(format!("{}:{}: {line}", file.display(), number + 1));
                }
                column += pos + "Branching".len();
                rest = &rest[pos + "Branching".len()..];
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "the deprecated `Branching` alias is still referenced:\n{}",
        offenders.join("\n")
    );
}
