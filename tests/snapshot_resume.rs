//! S3 acceptance suite for solve-state snapshots: interrupt → serialize →
//! temp file → reload → resume must provably continue the *same*
//! branch-and-bound tree.
//!
//! Over the pinned 12-instance corpus (see `common::corpus`), every case is
//! solved cold once, then interrupted at nodes 1, 3 and N/2 with snapshot
//! capture on; each snapshot is written to a temp file, read back by a
//! fresh engine/session, and the resumed solve must reach the **identical
//! objective, identical total node count and the golden optimal area** of
//! the uninterrupted run — a resumed tree explores no node twice and loses
//! none.

mod common;

use std::sync::Arc;

use advbist::core::engine::SynthesisEngine;
use advbist::core::SynthesisConfig;
use advbist::ilp::SolverConfig;
use advbist::ilp::{Model, Sense};
use advbist::{Budget, SolveSession, SolveSnapshot};
use common::corpus::CORPUS;

/// Serializes through a real temp file and parses back — the full wire
/// round trip a persisted job would take.
fn file_round_trip(snapshot: &SolveSnapshot, tag: &str) -> SolveSnapshot {
    let path = std::env::temp_dir().join(format!(
        "advbist_snapshot_{tag}_{}.json",
        std::process::id()
    ));
    let text = snapshot.to_json().expect("snapshot serializes");
    std::fs::write(&path, &text).expect("snapshot written");
    let reread = std::fs::read_to_string(&path).expect("snapshot reread");
    std::fs::remove_file(&path).ok();
    SolveSnapshot::from_json(&reread).expect("snapshot parses back")
}

#[test]
fn corpus_resumes_reach_the_uninterrupted_tree_exactly() {
    for case in CORPUS {
        let input = case.input();
        let config = SynthesisConfig::exact();
        let engine = SynthesisEngine::new(&input, &config).expect(case.name);

        let cold = engine
            .synthesize_resumable(case.sessions, None, None)
            .expect(case.name);
        assert!(
            cold.design.optimal,
            "{}: cold solve must be exact",
            case.name
        );
        assert_eq!(
            cold.design.area.total(),
            case.golden_area,
            "{}: cold golden area",
            case.name
        );
        assert!(
            cold.design.snapshot.is_none(),
            "{}: a completed solve must not carry a snapshot",
            case.name
        );
        let total_nodes = cold.design.stats.nodes;

        let mut interrupts = vec![1, 3, total_nodes / 2];
        interrupts.sort_unstable();
        interrupts.dedup();
        for interrupt in interrupts {
            if interrupt == 0 || interrupt >= total_nodes {
                continue;
            }
            let mut cut_config = SynthesisConfig::exact();
            cut_config.solver.budget = Budget::nodes(interrupt);
            let cut_engine = SynthesisEngine::new(&input, &cut_config).expect(case.name);
            let partial = cut_engine
                .synthesize_resumable(case.sessions, None, None)
                .expect(case.name);
            assert!(
                !partial.design.optimal,
                "{}@{interrupt}: interrupted solve must not be proven optimal",
                case.name
            );
            let snapshot = partial
                .design
                .snapshot
                .clone()
                .unwrap_or_else(|| panic!("{}@{interrupt}: no snapshot captured", case.name));
            assert!(snapshot.open_nodes() > 0, "{}@{interrupt}", case.name);

            let reloaded = file_round_trip(&snapshot, &format!("{}_{interrupt}", case.name));
            let resumed = engine
                .synthesize_resumable(case.sessions, None, Some(Arc::new(reloaded)))
                .expect(case.name);

            assert!(resumed.design.stats.resumed, "{}@{interrupt}", case.name);
            assert!(
                resumed.design.optimal,
                "{}@{interrupt}: resumed solve must finish exactly",
                case.name
            );
            assert_eq!(
                resumed.design.stats.nodes, total_nodes,
                "{}@{interrupt}: resumed total node count must equal the uninterrupted tree",
                case.name
            );
            assert_eq!(
                resumed.design.objective.to_bits(),
                cold.design.objective.to_bits(),
                "{}@{interrupt}: resumed objective must be bit-identical",
                case.name
            );
            assert_eq!(
                resumed.design.area.total(),
                case.golden_area,
                "{}@{interrupt}: resumed golden area",
                case.name
            );
        }
    }
}

/// A branchy pure-ILP instance for the session-level round trip: maximise a
/// value under a knapsack row plus pairwise conflicts, sized to take a few
/// dozen nodes.
fn knapsack_model() -> Model {
    knapsack_model_weighted(12.0)
}

/// The same instance with the weight of `x7` replaced, so two builds with
/// different `x7_value` collide on size but differ in one coefficient.
fn knapsack_model_weighted(x7_value: f64) -> Model {
    let mut model = Model::new("snapshot-knapsack");
    let weights = [5.0, 7.0, 4.0, 3.0, 8.0, 6.0, 5.0, 9.0, 2.0, 4.0];
    let values = [7.0, 9.0, 5.0, 4.0, 11.0, 8.0, 6.0, x7_value, 3.0, 5.0];
    let vars: Vec<_> = (0..weights.len())
        .map(|i| model.add_binary(format!("x{i}")))
        .collect();
    let cap: Vec<_> = vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect();
    model.add_leq(cap, 22.0, "cap");
    for i in 0..vars.len() - 3 {
        model.add_leq([(vars[i], 1.0), (vars[i + 3], 1.0)], 1.0, format!("c{i}"));
    }
    let objective: Vec<_> = vars.iter().zip(values).map(|(&v, c)| (v, c)).collect();
    model.set_objective(objective, Sense::Maximize);
    model
}

#[test]
fn fresh_session_resumes_a_file_round_tripped_snapshot() {
    let model = knapsack_model();
    let cold = SolveSession::new(&model)
        .snapshots(true)
        .solve()
        .expect("cold solve");
    assert!(cold.is_optimal());
    assert!(cold.snapshot().is_none());
    let total_nodes = cold.stats().nodes;
    assert!(total_nodes > 3, "instance must branch (got {total_nodes})");

    for interrupt in [1, 3, total_nodes / 2] {
        let partial = SolveSession::new(&model)
            .budget(Budget::nodes(interrupt).with_snapshot(true))
            .solve()
            .expect("interrupted solve");
        let snapshot = partial.snapshot().expect("snapshot captured");
        assert_eq!(snapshot.nodes(), interrupt);

        let reloaded = file_round_trip(snapshot, &format!("session_{interrupt}"));
        // A *fresh* session over the same model, resuming from the file.
        let resumed = SolveSession::new(&model)
            .resume(Arc::new(reloaded))
            .solve()
            .expect("resumed solve");
        assert!(resumed.is_optimal());
        assert!(resumed.stats().resumed);
        assert_eq!(resumed.stats().nodes, total_nodes, "@{interrupt}");
        assert_eq!(
            resumed.objective().to_bits(),
            cold.objective().to_bits(),
            "@{interrupt}"
        );
        assert_eq!(resumed.values(), cold.values(), "@{interrupt}");
    }
}

/// Rewrites a v2 snapshot document into the v1 wire shape: version field
/// back to 1, the `pending_cuts` batch and `eager_separation` flag dropped,
/// and the per-node `"ng"` (no-good learning allowed) flag stripped. This
/// is exactly what a snapshot written by the previous release looks like.
fn downgrade_to_v1(value: &mut advbist::ilp::json::Value) {
    use advbist::ilp::json::Value;
    let Value::Object(fields) = value else {
        panic!("snapshot document must be an object");
    };
    fields.retain(|(key, _)| key != "pending_cuts" && key != "eager_separation");
    for (key, field) in fields.iter_mut() {
        match (key.as_str(), &mut *field) {
            ("version", v) => *v = Value::Int(1),
            ("frontier", Value::Array(nodes)) => {
                for node in nodes {
                    if let Value::Object(node_fields) = node {
                        node_fields.retain(|(k, _)| k != "ng");
                    }
                }
            }
            _ => {}
        }
    }
}

#[test]
fn v1_snapshots_still_load_and_resume() {
    // Forward compatibility: the current engine must accept the previous
    // wire version (`MIN_FORMAT_VERSION`), defaulting the fields that did
    // not exist yet, and still finish the tree exactly.
    let model = knapsack_model();
    let cold = SolveSession::new(&model).solve().expect("cold solve");
    assert!(cold.is_optimal());

    let partial = SolveSession::new(&model)
        .budget(Budget::nodes(3).with_snapshot(true))
        .solve()
        .expect("interrupted solve");
    let snapshot = partial.snapshot().expect("snapshot captured");
    let text = snapshot.to_json().expect("snapshot serializes");
    assert!(text.contains("\"version\":2"), "current wire version is 2");

    let mut doc = advbist::ilp::json::Value::parse(&text).expect("valid json");
    downgrade_to_v1(&mut doc);
    let v1_text = doc.write();
    assert!(v1_text.contains("\"version\":1"));
    assert!(!v1_text.contains("pending_cuts"));
    assert!(!v1_text.contains("eager_separation"));
    assert!(!v1_text.contains("\"ng\""));

    let reloaded = SolveSnapshot::from_json(&v1_text).expect("v1 snapshot loads");
    let resumed = SolveSession::new(&model)
        .resume(Arc::new(reloaded))
        .solve()
        .expect("resumed solve");
    // The missing `ng` flags default to *false* (conservative: never learn
    // a no-good from a restored node), so the resumed tree may prune
    // slightly differently — but it must still prove the same optimum.
    assert!(resumed.is_optimal());
    assert!(resumed.stats().resumed);
    assert!(
        (resumed.objective() - cold.objective()).abs() < 1e-9,
        "v1 resume optimum {} != cold optimum {}",
        resumed.objective(),
        cold.objective()
    );
}

#[test]
fn resume_rejects_a_snapshot_of_a_different_instance() {
    let model = knapsack_model();
    let partial = SolveSession::new(&model)
        .budget(Budget::nodes(1).with_snapshot(true))
        .solve()
        .expect("interrupted solve");
    let snapshot = partial.shared_snapshot().expect("snapshot captured");

    // Same shape, one objective coefficient nudged: the content fingerprint
    // differs, so the resume must fail loudly instead of continuing a tree
    // that belongs to another instance.
    let other = knapsack_model_weighted(12.5);
    let err = SolveSession::new(&other)
        .resume(snapshot)
        .solve()
        .expect_err("mismatched snapshot must be rejected");
    let message = err.to_string();
    assert!(
        message.contains("snapshot") || message.contains("fingerprint"),
        "unexpected error: {message}"
    );
}

#[test]
fn snapshot_capture_is_off_by_default() {
    let model = knapsack_model();
    let partial = SolveSession::new(&model)
        .budget(Budget::nodes(2))
        .solve()
        .expect("interrupted solve");
    assert!(!partial.is_optimal());
    assert!(partial.snapshot().is_none());
    assert!(!partial.stats().snapshot_captured);
}

#[test]
fn budget_snapshot_knob_flows_through_the_solver_config() {
    // `Budget::snapshot` (the BIST_SNAPSHOT env knob) must reach the
    // search: Some(true) captures, Some(false) overrides an enabled config.
    let model = knapsack_model();
    let on = SolveSession::with_config(&model, SolverConfig::default())
        .budget(Budget::nodes(2).with_snapshot(true))
        .solve()
        .expect("solve");
    assert!(on.stats().snapshot_captured);
    let off = SolveSession::new(&model)
        .snapshots(true)
        .budget(Budget::nodes(2).with_snapshot(false))
        .solve()
        .expect("solve");
    assert!(!off.stats().snapshot_captured);
}
