//! Cross-crate integration tests: the full synthesis pipeline from scheduled
//! DFG to validated self-testable data path, for the ILP method and for every
//! heuristic baseline.

use std::time::Duration;

use advbist::baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::validate::{validate_design, validate_structure};
use advbist::datapath::TestRegisterKind;
use advbist::dfg::benchmarks;
use advbist::dfg::lifetime::LifetimeTable;

fn quick(limit_ms: u64) -> SynthesisConfig {
    SynthesisConfig::time_boxed(Duration::from_millis(limit_ms))
}

#[test]
fn figure1_full_pipeline_exact() {
    let input = benchmarks::figure1();
    let config = SynthesisConfig::exact();
    let lifetimes = LifetimeTable::new(&input).unwrap();

    let reference = reference::synthesize_reference(&input, &config).unwrap();
    assert!(reference.optimal);
    validate_structure(&reference.datapath, &input, &lifetimes).unwrap();

    for k in 1..=2 {
        let design = synthesis::synthesize_bist(&input, k, &config).unwrap();
        assert!(design.optimal, "k = {k}");
        validate_design(&design.datapath, &design.plan, &input, &lifetimes).unwrap();
        // The BIST design can never be cheaper than the reference.
        assert!(design.area.total() >= reference.area.total());
        // Every register kind matches the roles the plan assigns to it.
        for r in 0..design.datapath.num_registers() {
            assert_eq!(
                design.datapath.register_kind(r),
                design.plan.required_kind(r),
                "register {r} of the k={k} design"
            );
        }
    }
}

#[test]
fn every_benchmark_synthesises_under_a_small_budget() {
    // A smoke test over all six circuits of the paper: the ILP method (time
    // boxed) and all three baselines must produce validated designs.
    let config = quick(400);
    for (name, input) in benchmarks::all() {
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let k = input.binding().num_modules();

        let advbist = synthesis::synthesize_bist(&input, k, &config)
            .unwrap_or_else(|e| panic!("ADVBIST failed on {name}: {e}"));
        validate_design(&advbist.datapath, &advbist.plan, &input, &lifetimes)
            .unwrap_or_else(|e| panic!("ADVBIST design invalid on {name}: {e}"));

        for (method, result) in [
            ("ADVAN", synthesize_advan(&input, k, &config.cost)),
            ("RALLOC", synthesize_ralloc(&input, k, &config.cost)),
            ("BITS", synthesize_bits(&input, k, &config.cost)),
        ] {
            let design = result.unwrap_or_else(|e| panic!("{method} failed on {name}: {e}"));
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("{method} design invalid on {name}: {e}"));
        }
    }
}

#[test]
fn advbist_matches_or_beats_baselines_on_the_small_circuits() {
    // With a reasonable budget the concurrent ILP should never lose to the
    // heuristics on the small circuits — the paper's central claim.
    let config = quick(3_000);
    for (name, input) in benchmarks::small() {
        let k = input.binding().num_modules();
        let advbist = synthesis::synthesize_bist(&input, k, &config).unwrap();
        let advan = synthesize_advan(&input, k, &config.cost).unwrap();
        let bits = synthesize_bits(&input, k, &config.cost).unwrap();
        let ralloc = synthesize_ralloc(&input, k, &config.cost).unwrap();
        for (method, area) in [
            ("ADVAN", advan.area.total()),
            ("BITS", bits.area.total()),
            ("RALLOC", ralloc.area.total()),
        ] {
            assert!(
                advbist.area.total() <= area,
                "{name}: ADVBIST area {} exceeds {method} area {area}",
                advbist.area.total()
            );
        }
    }
}

#[test]
fn more_sessions_never_need_concurrent_bilbos_on_figure1() {
    // With one module per session (maximal k) there is never a reason for a
    // CBILBO on the figure1 example, and the exact solver should avoid the
    // 596-transistor register entirely.
    let input = benchmarks::figure1();
    let config = SynthesisConfig::exact();
    let design = synthesis::synthesize_bist(&input, 2, &config).unwrap();
    assert_eq!(design.area.count(TestRegisterKind::Cbilbo), 0);
}

#[test]
fn session_counts_out_of_range_error_cleanly() {
    let input = benchmarks::figure1();
    let config = quick(200);
    assert!(synthesis::synthesize_bist(&input, 0, &config).is_err());
    assert!(synthesis::synthesize_bist(&input, 99, &config).is_err());
}
