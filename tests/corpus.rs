//! The seeded regression corpus (see `common::corpus`): every pinned random
//! circuit must reach its golden optimal area, under the new default search
//! *and* under the PR-2 search it replaced. This is the coarse-grained
//! differential harness for search-layer changes — bounding, branching,
//! warm-start or fixing bugs that lose exactness show up here as a diff
//! against a known answer rather than as a silent quality regression.

mod common;

use advbist::core::{synthesis, SynthesisConfig};
use advbist::ilp::{BranchRule, SolverConfig};
use common::corpus::CORPUS;

/// The new default search configuration (warm dual simplex + pseudo-cost
/// branching + reduced-cost fixing), exact solving.
fn default_exact() -> SynthesisConfig {
    SynthesisConfig::exact()
}

/// The PR-2 search: cold two-phase primal LPs, most-constrained branching,
/// no reduced-cost fixing.
fn legacy_exact() -> SynthesisConfig {
    let mut config = SynthesisConfig::exact();
    config.solver = SolverConfig {
        lp_warm_start: false,
        rc_fixing: false,
        branching: BranchRule::MostConstrained,
        ..config.solver
    };
    config
}

#[test]
fn corpus_reaches_golden_optima_with_the_default_search() {
    assert!(!CORPUS.is_empty(), "corpus must not be empty");
    for case in CORPUS {
        let input = case.input();
        let design = synthesis::synthesize_bist(&input, case.sessions, &default_exact())
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", case.name));
        assert!(design.optimal, "{}: not proven optimal", case.name);
        assert_eq!(
            design.area.total(),
            case.golden_area,
            "{}: area diverged from the golden optimum",
            case.name
        );
        // Work regression check on the revised kernel: pivot counts are
        // bit-deterministic for a fixed configuration, so any drift means
        // the kernel (or the search layer above it) changed behaviour and
        // the goldens must be consciously regenerated.
        assert_eq!(
            design.stats.lp_pivots, case.golden_pivots,
            "{}: simplex pivot count diverged from the golden kernel work",
            case.name
        );
    }
}

#[test]
fn corpus_golden_optima_match_the_legacy_search() {
    // The old and new searches must agree on every pinned optimum — the
    // corpus-level differential check of the search overhaul.
    for case in CORPUS.iter().take(4) {
        let input = case.input();
        let design = synthesis::synthesize_bist(&input, case.sessions, &legacy_exact())
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", case.name));
        assert!(design.optimal, "{}: not proven optimal", case.name);
        assert_eq!(
            design.area.total(),
            case.golden_area,
            "{}: legacy search disagrees with the golden optimum",
            case.name
        );
    }
}

/// Regenerates the golden corpus table. Run with
/// `cargo test --test corpus regenerate_corpus_goldens -- --ignored --nocapture`
/// and paste the printed rows into `tests/common/corpus.rs`.
#[test]
#[ignore = "regenerates the golden corpus table; run with --ignored --nocapture"]
fn regenerate_corpus_goldens() {
    use advbist::dfg::benchmarks::{random_dfg, RandomDfgConfig};
    for (seed, num_ops, num_inputs, multipliers) in [
        (11u64, 5usize, 3usize, 1usize),
        (23, 6, 4, 1),
        (37, 6, 3, 1),
        (58, 5, 4, 1),
        (71, 6, 4, 2),
        (92, 7, 3, 1),
    ] {
        let config = RandomDfgConfig {
            seed,
            num_ops,
            num_inputs,
            multipliers,
            alus: 1,
        };
        let input = random_dfg(&config);
        let max_k = input.binding().num_modules();
        let mut sessions: Vec<usize> = vec![1, max_k];
        sessions.dedup();
        for k in sessions {
            let design = synthesis::synthesize_bist(&input, k, &default_exact()).unwrap();
            assert!(design.optimal, "seed {seed} k={k} did not solve exactly");
            let legacy = synthesis::synthesize_bist(&input, k, &legacy_exact()).unwrap();
            assert_eq!(
                design.area.total(),
                legacy.area.total(),
                "seed {seed} k={k}: searches disagree at generation time"
            );
            println!(
                "    CorpusCase {{ name: \"r{seed}k{k}\", seed: {seed}, num_ops: {num_ops}, \
                 num_inputs: {num_inputs}, multipliers: {multipliers}, sessions: {k}, \
                 golden_area: {}, golden_pivots: {} }},",
                design.area.total(),
                design.stats.lp_pivots
            );
        }
    }
}
