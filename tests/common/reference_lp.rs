//! Legacy dense two-phase tableau simplex, kept as the **differential
//! oracle** for the revised-simplex kernel.
//!
//! This is a faithful, deliberately simple port of the pre-revised LP path:
//! fixed variables are substituted out, every remaining variable is shifted
//! so its lower bound is zero, finite upper bounds become explicit `≤` rows,
//! `≥`/`=` rows get artificial variables, and a dense two-phase primal
//! simplex grinds the tableau down. It is quadratically larger and slower
//! than the production kernel — which is exactly why it was replaced — but
//! its simplicity makes it a trustworthy second opinion: the differential
//! harness in `properties.rs` checks the revised kernel against this oracle
//! over hundreds of PRNG models, cold and along warm re-solve chains.

use advbist::ilp::propagate::Domains;
use advbist::ilp::sparse::SparseModel;
use advbist::ilp::CmpOp;

/// Oracle outcome, mirroring the production `LpStatus` shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefStatus {
    Optimal,
    Infeasible,
    Unbounded,
    IterationLimit,
}

/// Oracle result: status and, at optimality, objective + point.
#[derive(Debug, Clone)]
pub struct RefSolution {
    pub status: RefStatus,
    pub objective: f64,
    pub values: Vec<f64>,
}

const EPS: f64 = 1e-9;

/// Solves `min objective·x + constant` over the rows of `matrix` and the
/// box of `domains` with the legacy dense two-phase tableau method.
pub fn solve_dense(
    matrix: &SparseModel,
    objective: &[f64],
    objective_constant: f64,
    domains: &Domains,
    max_pivots: u64,
) -> RefSolution {
    let n_orig = domains.len();
    // Substitute fixed variables, shift the rest to a zero lower bound.
    let mut col_of = vec![usize::MAX; n_orig];
    let mut orig_of_col = Vec::new();
    for (j, slot) in col_of.iter_mut().enumerate() {
        if !domains.is_fixed(j) {
            *slot = orig_of_col.len();
            orig_of_col.push(j);
        }
    }
    let n = orig_of_col.len();
    let shift: Vec<f64> = (0..n_orig)
        .map(|j| {
            if domains.is_fixed(j) {
                domains.fixed_value(j).unwrap_or(domains.lower(j))
            } else {
                domains.lower(j)
            }
        })
        .collect();
    let mut obj_shift = objective_constant;
    for (j, &c) in objective.iter().enumerate() {
        obj_shift += c * shift[j];
    }

    // Normalised rows over the free columns, plus an upper-bound row per
    // free column (the legacy kernel materialised every box side it
    // needed; the cold path only needs the upper side, the lower is the
    // shifted x' >= 0).
    struct NormRow {
        terms: Vec<(usize, f64)>,
        op: CmpOp,
        rhs: f64,
    }
    let mut norm_rows: Vec<NormRow> = Vec::new();
    for row in matrix.rows() {
        let mut rhs = row.rhs;
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for (j, a) in row.terms() {
            rhs -= a * shift[j];
            if !domains.is_fixed(j) {
                terms.push((col_of[j], a));
            }
        }
        if terms.is_empty() {
            let ok = match row.op {
                CmpOp::Le => 0.0 <= rhs + 1e-6,
                CmpOp::Ge => 0.0 >= rhs - 1e-6,
                CmpOp::Eq => rhs.abs() <= 1e-6,
            };
            if !ok {
                return RefSolution {
                    status: RefStatus::Infeasible,
                    objective: f64::INFINITY,
                    values: Vec::new(),
                };
            }
            continue;
        }
        norm_rows.push(NormRow {
            terms,
            op: row.op,
            rhs,
        });
    }
    for (col, &j) in orig_of_col.iter().enumerate() {
        norm_rows.push(NormRow {
            terms: vec![(col, 1.0)],
            op: CmpOp::Le,
            rhs: domains.upper(j) - shift[j],
        });
    }

    if n == 0 {
        return RefSolution {
            status: RefStatus::Optimal,
            objective: obj_shift,
            values: shift,
        };
    }
    let m = norm_rows.len();

    // Column layout: structurals, then slack/surplus + artificials.
    let mut total_cols = n;
    let mut row_aux: Vec<(Option<usize>, Option<usize>)> = Vec::with_capacity(m);
    let mut flipped: Vec<bool> = Vec::with_capacity(m);
    for row in &norm_rows {
        let flip = row.rhs < 0.0;
        flipped.push(flip);
        let op = effective_op(row.op, flip);
        let slack = matches!(op, CmpOp::Le | CmpOp::Ge).then(|| {
            total_cols += 1;
            total_cols - 1
        });
        let artificial = matches!(op, CmpOp::Ge | CmpOp::Eq).then(|| {
            total_cols += 1;
            total_cols - 1
        });
        row_aux.push((slack, artificial));
    }

    let width = total_cols + 1;
    let mut tab = vec![0.0f64; m * width];
    let mut basis = vec![usize::MAX; m];
    let mut is_artificial = vec![false; total_cols];
    for (i, row) in norm_rows.iter().enumerate() {
        let sign = if flipped[i] { -1.0 } else { 1.0 };
        for &(c, a) in &row.terms {
            tab[i * width + c] += sign * a;
        }
        tab[i * width + total_cols] = sign * row.rhs;
        let (slack, artificial) = row_aux[i];
        match effective_op(row.op, flipped[i]) {
            CmpOp::Le => {
                let s = slack.expect("le row has slack");
                tab[i * width + s] = 1.0;
                basis[i] = s;
            }
            CmpOp::Ge => {
                tab[i * width + slack.expect("ge surplus")] = -1.0;
                let a = artificial.expect("ge artificial");
                tab[i * width + a] = 1.0;
                is_artificial[a] = true;
                basis[i] = a;
            }
            CmpOp::Eq => {
                let a = artificial.expect("eq artificial");
                tab[i * width + a] = 1.0;
                is_artificial[a] = true;
                basis[i] = a;
            }
        }
    }
    let mut costs = vec![0.0f64; total_cols];
    for (c, &j) in orig_of_col.iter().enumerate() {
        costs[c] = objective[j];
    }

    let mut pivots = 0u64;
    // Phase 1.
    if is_artificial.iter().any(|&a| a) {
        let phase1: Vec<f64> = (0..total_cols)
            .map(|c| if is_artificial[c] { 1.0 } else { 0.0 })
            .collect();
        let status = run_simplex(
            &mut tab,
            &mut basis,
            m,
            total_cols,
            &phase1,
            &vec![true; total_cols],
            max_pivots,
            &mut pivots,
        );
        if status == InnerStatus::IterationLimit {
            return no_solution(RefStatus::IterationLimit);
        }
        let phase1_obj: f64 = basis
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if is_artificial[b] {
                    tab[i * width + total_cols]
                } else {
                    0.0
                }
            })
            .sum();
        if phase1_obj > 1e-6 {
            return no_solution(RefStatus::Infeasible);
        }
        // Pivot basic artificials out (the latent seed bug PR 3 fixed).
        for row in 0..m {
            if !is_artificial[basis[row]] {
                continue;
            }
            let target = (0..total_cols).find(|&j| {
                !is_artificial[j] && !basis.contains(&j) && tab[row * width + j].abs() > 1e-7
            });
            if let Some(col) = target {
                pivot(&mut tab, m, width, row, col);
                basis[row] = col;
            }
        }
    }

    // Phase 2.
    let allowed: Vec<bool> = (0..total_cols).map(|c| !is_artificial[c]).collect();
    let status = run_simplex(
        &mut tab,
        &mut basis,
        m,
        total_cols,
        &costs,
        &allowed,
        max_pivots,
        &mut pivots,
    );
    match status {
        InnerStatus::IterationLimit => no_solution(RefStatus::IterationLimit),
        InnerStatus::Unbounded => no_solution(RefStatus::Unbounded),
        InnerStatus::Optimal => {
            let mut shifted = vec![0.0f64; n];
            for (i, &b) in basis.iter().enumerate() {
                if b < n {
                    shifted[b] = tab[i * width + total_cols];
                }
            }
            let mut values = vec![0.0f64; n_orig];
            for (j, v) in values.iter_mut().enumerate() {
                *v = if domains.is_fixed(j) {
                    shift[j]
                } else {
                    shift[j] + shifted[col_of[j]].max(0.0)
                };
            }
            let objective_value = obj_shift
                + costs
                    .iter()
                    .take(n)
                    .zip(&shifted)
                    .map(|(c, x)| c * x)
                    .sum::<f64>();
            RefSolution {
                status: RefStatus::Optimal,
                objective: objective_value,
                values,
            }
        }
    }
}

fn no_solution(status: RefStatus) -> RefSolution {
    RefSolution {
        status,
        objective: f64::INFINITY,
        values: Vec::new(),
    }
}

fn effective_op(op: CmpOp, flipped: bool) -> CmpOp {
    if !flipped {
        return op;
    }
    match op {
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
    IterationLimit,
}

#[allow(clippy::too_many_arguments)]
fn run_simplex(
    tab: &mut [f64],
    basis: &mut [usize],
    m: usize,
    total_cols: usize,
    costs: &[f64],
    allowed: &[bool],
    max_pivots: u64,
    pivots: &mut u64,
) -> InnerStatus {
    let width = total_cols + 1;
    let bland_threshold = 4 * (m as u64 + total_cols as u64) + 64;
    let mut iterations_here = 0u64;
    loop {
        if *pivots >= max_pivots {
            return InnerStatus::IterationLimit;
        }
        let use_bland = iterations_here > bland_threshold;
        let mut entering: Option<usize> = None;
        let mut best_rc = -EPS;
        for j in 0..total_cols {
            if !allowed[j] || basis.contains(&j) {
                continue;
            }
            let mut rc = costs[j];
            for i in 0..m {
                let cb = costs[basis[i]];
                if cb != 0.0 {
                    rc -= cb * tab[i * width + j];
                }
            }
            if rc < -EPS {
                if use_bland {
                    entering = Some(j);
                    break;
                }
                if rc < best_rc {
                    best_rc = rc;
                    entering = Some(j);
                }
            }
        }
        let Some(col) = entering else {
            return InnerStatus::Optimal;
        };
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = tab[i * width + col];
            if a > EPS {
                let ratio = tab[i * width + total_cols] / a;
                if ratio < best_ratio - 1e-12
                    || (ratio < best_ratio + 1e-12
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(row) = leaving else {
            return InnerStatus::Unbounded;
        };
        pivot(tab, m, width, row, col);
        basis[row] = col;
        *pivots += 1;
        iterations_here += 1;
    }
}

fn pivot(tab: &mut [f64], m: usize, width: usize, prow: usize, pcol: usize) {
    let pval = tab[prow * width + pcol];
    let inv = 1.0 / pval;
    for j in 0..width {
        tab[prow * width + j] *= inv;
    }
    tab[prow * width + pcol] = 1.0;
    for i in 0..m {
        if i == prow {
            continue;
        }
        let factor = tab[i * width + pcol];
        if factor.abs() < 1e-12 {
            continue;
        }
        for j in 0..width {
            tab[i * width + j] -= factor * tab[prow * width + j];
        }
        tab[i * width + pcol] = 0.0;
    }
}
