//! Shared helpers for the integration test suites: a tiny deterministic
//! PRNG (the registry-less build cannot use `proptest`/`rand`), a random 0-1
//! model generator and an exhaustive-enumeration oracle for the solver.
// Each test binary includes this module separately and uses a different
// subset of it.
#![allow(dead_code)]

pub mod corpus;
pub mod reference_lp;

use advbist::ilp::{Model, Sense};

/// Deterministic xorshift* PRNG; the failing seed is printed by every
/// property harness, so a reported failure reproduces with a unit test.
pub struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi);
        lo + self.next_u64() % (hi - lo)
    }
}

/// Exhaustively solves a pure-binary model by enumeration (only usable for a
/// handful of variables). Returns the optimal objective, `None` when
/// infeasible.
pub fn brute_force(model: &Model) -> Option<f64> {
    let n = model.num_vars();
    assert!(n <= 16, "brute force only for tiny models");
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let values: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        if model.is_feasible(&values, 1e-6) {
            let obj = model.objective_value(&values);
            let better = match (model.sense(), best) {
                (_, None) => true,
                (Sense::Minimize, Some(b)) => obj < b,
                (Sense::Maximize, Some(b)) => obj > b,
            };
            if better {
                best = Some(obj);
            }
        }
    }
    best
}

/// Generates a random pure-binary model with ±1 coefficients, mixed
/// operators and a small integer objective.
pub fn random_binary_model(seed: u64, num_vars: usize, num_rows: usize) -> Model {
    let mut rng = Rng::new(seed);
    let mut model = Model::new(format!("random_{seed}"));
    let vars: Vec<_> = (0..num_vars)
        .map(|i| model.add_binary(format!("x{i}")))
        .collect();
    for row in 0..num_rows {
        let mut terms = Vec::new();
        for &v in &vars {
            let pick = rng.next_u64() % 3;
            if pick == 0 {
                continue;
            }
            let coeff = if pick == 1 { 1.0 } else { -1.0 };
            terms.push((v, coeff));
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = (rng.next_u64() % 3) as f64 - 1.0;
        match rng.next_u64() % 3 {
            0 => model.add_leq(terms, rhs, format!("r{row}")),
            1 => model.add_geq(terms, rhs, format!("r{row}")),
            _ => model.add_eq(terms, rhs.max(0.0), format!("r{row}")),
        };
    }
    let objective: Vec<_> = vars
        .iter()
        .map(|&v| (v, ((rng.next_u64() % 11) as f64) - 5.0))
        .collect();
    let sense = if rng.next_u64().is_multiple_of(2) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    model.set_objective(objective, sense);
    model
}
