//! Seeded regression corpus for the search layer: pinned random circuits
//! from [`advbist::dfg::benchmarks::random`] with **golden optimal costs**.
//!
//! The six paper circuits are either trivially small (figure1) or not
//! exactly solvable in test budgets (tseng, paulin), so search-layer changes
//! used to be validated only against brute-forceable toy models. This corpus
//! pins a band of mid-size instances — large enough to branch, small enough
//! to solve exactly in seconds — together with the optimal ADVBIST area each
//! one must reach. Any change to bounding, branching or fixing that loses
//! exactness diffs against these golden answers immediately.
//!
//! The golden areas were computed with the exact solver configuration and
//! cross-checked against the PR-2 search (cold LPs, most-constrained
//! branching, no reduced-cost fixing). The per-instance **golden pivot
//! counts** additionally pin the revised simplex kernel's work (deterministic
//! on any IEEE-754 platform), so a kernel change that keeps the optima but
//! silently inflates the search shows up as a diff. Regenerate both with
//! `cargo test --test corpus regenerate_corpus_goldens -- --ignored --nocapture`.

use advbist::dfg::benchmarks::{random_dfg, RandomDfgConfig};
use advbist::dfg::SynthesisInput;

/// One pinned corpus instance.
pub struct CorpusCase {
    /// Short name used in assertion messages.
    pub name: &'static str,
    /// PRNG seed of the random DFG.
    pub seed: u64,
    /// Number of operations of the random DFG.
    pub num_ops: usize,
    /// Number of primary inputs of the random DFG.
    pub num_inputs: usize,
    /// Multipliers available for scheduling.
    pub multipliers: usize,
    /// Sub-test session count `k` to synthesise for.
    pub sessions: usize,
    /// Golden optimal ADVBIST area (transistors) for this `k`.
    pub golden_area: u64,
    /// Golden simplex pivot count (basis changes, primal + dual) of the
    /// default exact search under the revised kernel. Unlike the area —
    /// which may only move with a *cost-model* change — this pins the
    /// *work* the kernel spends, so a kernel change that silently regresses
    /// pricing, the ratio tests or the warm path diffs here immediately.
    /// Regenerate together with the areas (see the module docs).
    pub golden_pivots: u64,
}

impl CorpusCase {
    /// Rebuilds the pinned circuit.
    pub fn input(&self) -> SynthesisInput {
        random_dfg(&self.config())
    }

    /// The generator configuration of the pinned circuit.
    pub fn config(&self) -> RandomDfgConfig {
        RandomDfgConfig {
            seed: self.seed,
            num_ops: self.num_ops,
            num_inputs: self.num_inputs,
            multipliers: self.multipliers,
            alus: 1,
        }
    }
}

/// The pinned corpus. Golden areas regenerated as described in the module
/// docs; they must only ever change when the *cost model* changes, never
/// with a search-layer change.
pub const CORPUS: &[CorpusCase] = &[
    CorpusCase {
        name: "r11k1",
        seed: 11,
        num_ops: 5,
        num_inputs: 3,
        multipliers: 1,
        sessions: 1,
        golden_area: 1616,
        golden_pivots: 1329,
    },
    CorpusCase {
        name: "r11k2",
        seed: 11,
        num_ops: 5,
        num_inputs: 3,
        multipliers: 1,
        sessions: 2,
        golden_area: 1520,
        golden_pivots: 4259,
    },
    CorpusCase {
        name: "r23k1",
        seed: 23,
        num_ops: 6,
        num_inputs: 4,
        multipliers: 1,
        sessions: 1,
        golden_area: 1376,
        golden_pivots: 379,
    },
    CorpusCase {
        name: "r23k2",
        seed: 23,
        num_ops: 6,
        num_inputs: 4,
        multipliers: 1,
        sessions: 2,
        golden_area: 1312,
        golden_pivots: 1000,
    },
    CorpusCase {
        name: "r37k1",
        seed: 37,
        num_ops: 6,
        num_inputs: 3,
        multipliers: 1,
        sessions: 1,
        golden_area: 1876,
        golden_pivots: 1280,
    },
    CorpusCase {
        name: "r37k2",
        seed: 37,
        num_ops: 6,
        num_inputs: 3,
        multipliers: 1,
        sessions: 2,
        golden_area: 1616,
        golden_pivots: 4276,
    },
    CorpusCase {
        name: "r58k1",
        seed: 58,
        num_ops: 5,
        num_inputs: 4,
        multipliers: 1,
        sessions: 1,
        golden_area: 1440,
        golden_pivots: 1827,
    },
    CorpusCase {
        name: "r58k2",
        seed: 58,
        num_ops: 5,
        num_inputs: 4,
        multipliers: 1,
        sessions: 2,
        golden_area: 1424,
        golden_pivots: 7685,
    },
    CorpusCase {
        name: "r71k1",
        seed: 71,
        num_ops: 6,
        num_inputs: 4,
        multipliers: 2,
        sessions: 1,
        golden_area: 1892,
        golden_pivots: 2089,
    },
    CorpusCase {
        name: "r71k2",
        seed: 71,
        num_ops: 6,
        num_inputs: 4,
        multipliers: 2,
        sessions: 2,
        golden_area: 1552,
        golden_pivots: 2305,
    },
    CorpusCase {
        name: "r92k1",
        seed: 92,
        num_ops: 7,
        num_inputs: 3,
        multipliers: 1,
        sessions: 1,
        golden_area: 1920,
        golden_pivots: 111,
    },
    CorpusCase {
        name: "r92k2",
        seed: 92,
        num_ops: 7,
        num_inputs: 3,
        multipliers: 1,
        sessions: 2,
        golden_area: 1920,
        golden_pivots: 2331,
    },
];
