//! Validity suite for the cutting-plane layer: a cut may tighten the LP
//! relaxation but must never cut off an integer-feasible point. Every cut
//! the solver emits — mined covers/cliques, Gomory mixed-integer cuts,
//! lifted covers and conflict no-goods — is checked against (a) **every**
//! feasible 0/1 point of brute-forceable PRNG models and (b) the proven
//! integer optimum of each pinned corpus instance, solved without presolve
//! so cut indices and solution values share one variable space.

mod common;

use advbist::core::formulation::BistFormulation;
use advbist::core::SynthesisConfig;
use advbist::ilp::{CutKind, CutRow, Model, SolverConfig};
use common::corpus::CORPUS;
use common::random_binary_model;

/// Activity of one cut row at a point.
fn cut_activity(cut: &CutRow, values: &[f64]) -> f64 {
    cut.terms.iter().map(|&(j, a)| a * values[j]).sum()
}

/// Panics if `values` violates any recorded cut (all cuts are `<= rhs`).
fn assert_cuts_satisfied(cuts: &[CutRow], values: &[f64], context: &str) {
    for (i, cut) in cuts.iter().enumerate() {
        let activity = cut_activity(cut, values);
        assert!(
            activity <= cut.rhs + 1e-6,
            "{context}: cut #{i} ({:?}) violated: activity {activity} > rhs {}",
            cut.kind,
            cut.rhs
        );
    }
}

/// The exact solver configuration the validity checks run under: presolve
/// off (cut indices must mean original model columns), cut separation on,
/// and the emitted rows recorded into the stats.
fn recording_config() -> SolverConfig {
    SolverConfig::exact()
        .with_presolve(false)
        .with_record_cuts(true)
}

/// On PRNG 0-1 models small enough to enumerate, **no feasible integer
/// point** may violate any emitted cut, and the proven optimum must match
/// brute force (the cuts tightened the relaxation without biting the hull).
#[test]
fn no_emitted_cut_excludes_a_feasible_point_on_prng_models() {
    let mut checked_points = 0u64;
    let mut total_cuts = 0u64;
    for seed in 0..60u64 {
        let model = random_binary_model(seed.wrapping_mul(7451) + 13, 8, 6);
        let expected = common::brute_force(&model);
        let solution = model.solve(&recording_config()).unwrap();
        let cuts = &solution.stats().emitted_cuts;
        total_cuts += cuts.len() as u64;
        if let Some(best) = expected {
            assert!(solution.is_optimal(), "seed {seed}: not optimal");
            assert!(
                (solution.objective() - best).abs() < 1e-6,
                "seed {seed}: solver {} vs brute force {best}",
                solution.objective()
            );
        } else {
            assert!(!solution.is_feasible(), "seed {seed}: expected infeasible");
        }
        if cuts.is_empty() {
            continue;
        }
        let n = model.num_vars();
        for mask in 0..(1u32 << n) {
            let point: Vec<f64> = (0..n).map(|j| f64::from(mask >> j & 1)).collect();
            if !model.is_feasible(&point, 1e-6) {
                continue;
            }
            checked_points += 1;
            assert_cuts_satisfied(cuts, &point, &format!("seed {seed}, mask {mask:#x}"));
        }
    }
    assert!(
        checked_points > 0 && total_cuts > 0,
        "vacuous run: {checked_points} points against {total_cuts} cuts"
    );
}

/// Over the pinned 12-instance corpus (solved raw, without presolve), the
/// proven integer optimum must satisfy every cut emitted on the way to it —
/// including Gomory rows derived at tree nodes and conflict no-goods, whose
/// validity arguments (root-box unshifting, refutation-only learning) this
/// pins end to end.
#[test]
fn corpus_optima_satisfy_every_emitted_cut() {
    let config = SynthesisConfig::exact();
    let mut by_kind = [0u64; 5];
    for case in CORPUS {
        let input = case.input();
        let mut formulation = BistFormulation::new(&input, &config).expect(case.name);
        formulation.add_interconnect();
        formulation.add_mux_sizing();
        formulation.add_bist(case.sessions).expect(case.name);
        formulation.set_bist_objective();
        let solution = formulation
            .model
            .solve(&recording_config())
            .expect(case.name);
        assert!(solution.is_optimal(), "{}: not solved exactly", case.name);
        for cut in &solution.stats().emitted_cuts {
            by_kind[match cut.kind {
                CutKind::Cover => 0,
                CutKind::Clique => 1,
                CutKind::Gomory => 2,
                CutKind::LiftedCover => 3,
                CutKind::NoGood => 4,
            }] += 1;
        }
        assert_cuts_satisfied(&solution.stats().emitted_cuts, solution.values(), case.name);
        // The recorded rows and the emitted counters must tell one story.
        assert_eq!(
            solution.stats().emitted_cuts.len() as u64,
            solution.stats().cuts_emitted.total(),
            "{}: recorded rows vs counters",
            case.name
        );
    }
    // The suite is only meaningful if the new separators actually fire
    // somewhere in the corpus.
    assert!(
        by_kind.iter().sum::<u64>() > 0,
        "no cuts emitted anywhere in the corpus"
    );
}

/// Sanity for the recording switch itself: off by default, and recording
/// does not change the search (same tree, same optimum).
#[test]
fn cut_recording_is_off_by_default_and_side_effect_free() {
    let model: Model = random_binary_model(0xc0ffee, 8, 6);
    let plain = model
        .solve(&SolverConfig::exact().with_presolve(false))
        .unwrap();
    assert!(plain.stats().emitted_cuts.is_empty());
    let recorded = model.solve(&recording_config()).unwrap();
    assert_eq!(plain.stats().nodes, recorded.stats().nodes);
    assert_eq!(plain.objective().to_bits(), recorded.objective().to_bits());
    assert_eq!(
        recorded.stats().emitted_cuts.len() as u64,
        recorded.stats().cuts_emitted.total()
    );
}
