//! Integration tests of the ILP substrate against the synthesis layers: the
//! solver must behave as an exact oracle on models small enough to
//! cross-check by exhaustive enumeration, and the LP writer must round-trip
//! the generated BIST models structurally.

mod common;

use advbist::dfg::benchmarks;
use advbist::ilp::{lpfile, BoundMode, BranchRule, SearchOrder, SolverConfig};
use common::{brute_force, random_binary_model};

/// Branch and bound agrees with exhaustive enumeration on random small 0-1
/// models, for every bounding and search strategy.
#[test]
fn solver_matches_brute_force() {
    for seed in 0..40u64 {
        let model = random_binary_model(seed * 251, 8, 6);
        let expected = brute_force(&model);
        for config in [
            SolverConfig::exact(),
            SolverConfig::exact().with_bound_mode(BoundMode::Propagation),
            SolverConfig::exact()
                .with_bound_mode(BoundMode::Hybrid { lp_depth: 2 })
                .with_search(SearchOrder::BestFirst),
            SolverConfig::exact().with_branching(BranchRule::MostFractional),
        ] {
            let solution = model.solve(&config).unwrap();
            match expected {
                None => assert!(
                    !solution.is_feasible(),
                    "seed {seed}: expected infeasible ({config:?})"
                ),
                Some(best) => {
                    assert!(
                        solution.is_optimal(),
                        "seed {seed}: not optimal ({config:?})"
                    );
                    assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}: solver {} vs brute force {} ({config:?})",
                        solution.objective(),
                        best
                    );
                }
            }
        }
    }
}

#[test]
fn bist_models_serialise_to_lp_format() {
    // Build the full ADVBIST model for the figure1 example and check the LP
    // writer covers every variable and constraint family.
    use advbist::core::formulation::BistFormulation;
    use advbist::core::SynthesisConfig;
    let input = benchmarks::figure1();
    let config = SynthesisConfig::default();
    let mut formulation = BistFormulation::new(&input, &config).unwrap();
    formulation.add_interconnect();
    formulation.add_mux_sizing();
    formulation.add_bist(2).unwrap();
    formulation.set_bist_objective();

    let text = lpfile::to_lp_string(&formulation.model);
    assert!(text.contains("Minimize"));
    assert!(text.contains("Binaries"));
    assert!(text.contains("eq7"));
    assert!(text.contains("eq10"));
    assert!(text.contains("End"));
    // Every model variable appears in the Binaries section or bounds.
    assert!(text.len() > 10_000, "the figure1 BIST model is non-trivial");

    // Round trip: re-parse the text and check the structure survived —
    // variable and constraint counts, integrality sections, per-constraint
    // term counts and right-hand sides.
    let parsed = lpfile::parse_lp(&text).expect("generated LP text parses");
    assert_eq!(parsed.num_vars(), formulation.model.num_vars());
    assert_eq!(
        parsed.constraints.len(),
        formulation.model.num_constraints()
    );
    assert_eq!(parsed.binaries.len(), formulation.model.num_binary());
    assert!(!parsed.maximize);
    for (parsed_c, model_c) in parsed
        .constraints
        .iter()
        .zip(formulation.model.constraints())
    {
        assert_eq!(parsed_c.terms.len(), model_c.expr.len(), "{}", model_c.name);
        assert!(
            (parsed_c.rhs - model_c.rhs).abs() < 1e-9,
            "{}",
            model_c.name
        );
    }
}

#[test]
fn solver_statistics_are_populated() {
    let input = benchmarks::figure1();
    let config = advbist::core::SynthesisConfig::exact();
    let design = advbist::core::synthesis::synthesize_bist(&input, 1, &config).unwrap();
    assert!(design.stats.nodes > 0);
    assert!(design.stats.time.as_nanos() > 0);
    assert!(design.objective > 0.0);
}
