//! Integration tests of the ILP substrate against the synthesis layers: the
//! solver must behave as an exact oracle on models small enough to
//! cross-check by exhaustive enumeration, and the LP writer must round-trip
//! the generated BIST models structurally.

use advbist::dfg::benchmarks;
use advbist::ilp::{lpfile, BoundMode, Branching, Model, SearchOrder, Sense, SolverConfig};
use proptest::prelude::*;

/// Exhaustively solves a pure-binary model by enumeration (only usable for a
/// handful of variables).
fn brute_force(model: &Model) -> Option<f64> {
    let n = model.num_vars();
    assert!(n <= 16, "brute force only for tiny models");
    let mut best: Option<f64> = None;
    for mask in 0u32..(1 << n) {
        let values: Vec<f64> = (0..n).map(|i| f64::from((mask >> i) & 1)).collect();
        if model.is_feasible(&values, 1e-6) {
            let obj = model.objective_value(&values);
            let better = match (model.sense(), best) {
                (_, None) => true,
                (Sense::Minimize, Some(b)) => obj < b,
                (Sense::Maximize, Some(b)) => obj > b,
            };
            if better {
                best = Some(obj);
            }
        }
    }
    best
}

fn random_binary_model(seed: u64, num_vars: usize, num_rows: usize) -> Model {
    // Deterministic pseudo-random model generation without external crates.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut model = Model::new(format!("random_{seed}"));
    let vars: Vec<_> = (0..num_vars)
        .map(|i| model.add_binary(format!("x{i}")))
        .collect();
    for row in 0..num_rows {
        let mut terms = Vec::new();
        for &v in &vars {
            let pick = next() % 3;
            if pick == 0 {
                continue;
            }
            let coeff = if pick == 1 { 1.0 } else { -1.0 };
            terms.push((v, coeff));
        }
        if terms.is_empty() {
            continue;
        }
        let rhs = (next() % 3) as f64 - 1.0;
        match next() % 3 {
            0 => model.add_leq(terms, rhs, format!("r{row}")),
            1 => model.add_geq(terms, rhs, format!("r{row}")),
            _ => model.add_eq(terms, rhs.max(0.0), format!("r{row}")),
        };
    }
    let objective: Vec<_> = vars
        .iter()
        .map(|&v| (v, ((next() % 11) as f64) - 5.0))
        .collect();
    let sense = if next() % 2 == 0 {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    model.set_objective(objective, sense);
    model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Branch and bound agrees with exhaustive enumeration on random small
    /// 0-1 models, for every bounding and search strategy.
    #[test]
    fn solver_matches_brute_force(seed in 0u64..10_000) {
        let model = random_binary_model(seed, 8, 6);
        let expected = brute_force(&model);
        for config in [
            SolverConfig::exact(),
            SolverConfig::exact().with_bound_mode(BoundMode::Propagation),
            SolverConfig::exact()
                .with_bound_mode(BoundMode::Hybrid { lp_depth: 2 })
                .with_search(SearchOrder::BestFirst),
            SolverConfig::exact().with_branching(Branching::MostFractional),
        ] {
            let solution = model.solve(&config).unwrap();
            match expected {
                None => prop_assert!(!solution.is_feasible(), "seed {seed}: expected infeasible"),
                Some(best) => {
                    prop_assert!(solution.is_optimal(), "seed {seed}: not optimal");
                    prop_assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}: solver {} vs brute force {}",
                        solution.objective(),
                        best
                    );
                }
            }
        }
    }
}

#[test]
fn bist_models_serialise_to_lp_format() {
    // Build the full ADVBIST model for the figure1 example and check the LP
    // writer covers every variable and constraint family.
    use advbist::core::formulation::BistFormulation;
    use advbist::core::SynthesisConfig;
    let input = benchmarks::figure1();
    let config = SynthesisConfig::default();
    let mut formulation = BistFormulation::new(&input, &config).unwrap();
    formulation.add_interconnect();
    formulation.add_mux_sizing();
    formulation.add_bist(2).unwrap();
    formulation.set_bist_objective();

    let text = lpfile::to_lp_string(&formulation.model);
    assert!(text.contains("Minimize"));
    assert!(text.contains("Binaries"));
    assert!(text.contains("eq7"));
    assert!(text.contains("eq10"));
    assert!(text.contains("End"));
    // Every model variable appears in the Binaries section or bounds.
    assert!(text.len() > 10_000, "the figure1 BIST model is non-trivial");
}

#[test]
fn solver_statistics_are_populated() {
    let input = benchmarks::figure1();
    let config = advbist::core::SynthesisConfig::exact();
    let design = advbist::core::synthesis::synthesize_bist(&input, 1, &config).unwrap();
    assert!(design.stats.nodes > 0);
    assert!(design.stats.time.as_nanos() > 0);
    assert!(design.objective > 0.0);
}
