//! Property-based tests over randomly generated inputs: the invariants that
//! must hold for *every* circuit and every small 0-1 model, not just the six
//! paper benchmarks. The cases are driven by a deterministic in-repo PRNG
//! (see `common`), so every failure message names the seed that reproduces
//! it.

mod common;

use std::time::Duration;

use advbist::baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::validate::validate_design;
use advbist::datapath::{CostModel, Datapath};
use advbist::dfg::allocate::left_edge;
use advbist::dfg::benchmarks::{random_dfg, RandomDfgConfig};
use advbist::dfg::lifetime::{InputTiming, LifetimeTable};
use advbist::ilp::reduce::{reduce, solve_reduced, ReduceOptions, VarDisposition};
use advbist::ilp::{BoundMode, SolverConfig};
use common::{brute_force, random_binary_model, Rng};

/// Draws a random DFG configuration from a seeded PRNG, mirroring the
/// proptest strategy the seed repository used.
fn arbitrary_config(rng: &mut Rng) -> RandomDfgConfig {
    RandomDfgConfig {
        seed: rng.range(0, 500),
        num_ops: rng.range(4, 10) as usize,
        num_inputs: rng.range(3, 6) as usize,
        multipliers: rng.range(1, 3) as usize,
        alus: 1,
    }
}

/// Left-edge allocation always hits the horizontal-crossing lower bound and
/// never co-locates conflicting variables.
#[test]
fn left_edge_is_optimal_and_valid() {
    let mut rng = Rng::new(0x1e01);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        assert_eq!(
            assignment.num_registers(),
            lifetimes.min_registers(),
            "case {case}, config {config:?}"
        );
        assert!(
            assignment.is_valid(&lifetimes),
            "case {case}, config {config:?}"
        );
    }
}

/// Loading primary inputs early (FromStart) can only increase register
/// pressure relative to just-in-time loading.
#[test]
fn input_timing_monotonicity() {
    let mut rng = Rng::new(0x71b3);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let jit = LifetimeTable::with_timing(&input, InputTiming::JustInTime).unwrap();
        let early = LifetimeTable::with_timing(&input, InputTiming::FromStart).unwrap();
        assert!(
            early.min_registers() >= jit.min_registers(),
            "case {case}, config {config:?}"
        );
    }
}

/// Every heuristic baseline produces a design that passes the structural and
/// BIST validators, for every random circuit and the maximal k.
#[test]
fn baselines_always_produce_valid_designs() {
    let mut rng = Rng::new(0xba5e);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let cost = CostModel::eight_bit();
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let k = input.binding().num_modules();
        for (method, result) in [
            ("ADVAN", synthesize_advan(&input, k, &cost)),
            ("RALLOC", synthesize_ralloc(&input, k, &cost)),
            ("BITS", synthesize_bits(&input, k, &cost)),
        ] {
            let design = result
                .unwrap_or_else(|e| panic!("{method} failed on case {case} ({config:?}): {e}"));
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("{method} invalid on case {case} ({config:?}): {e}"));
            assert!(design.area.total() > 0, "{method}, case {case}");
        }
    }
}

/// The data path derived from any valid register assignment implements every
/// DFG edge (checked via its area being computable and the structural
/// validator accepting it).
#[test]
fn datapath_construction_is_total() {
    let mut rng = Rng::new(0xd47a);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        let datapath = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
        assert_eq!(
            datapath.num_registers(),
            lifetimes.min_registers(),
            "case {case}, config {config:?}"
        );
        advbist::datapath::validate::validate_structure(&datapath, &input, &lifetimes)
            .unwrap_or_else(|e| panic!("structure invalid on case {case} ({config:?}): {e}"));
        let area = datapath.area(&CostModel::eight_bit());
        assert!(area.total() >= 208 * datapath.num_registers() as u64);
    }
}

/// The time-boxed ADVBIST flow always returns a *validated* design on random
/// circuits, and its area is at least the reference area.
#[test]
fn advbist_designs_are_always_valid() {
    let mut rng = Rng::new(0xadb1);
    for case in 0..6 {
        let seed = rng.range(0, 200);
        let input = random_dfg(&RandomDfgConfig {
            seed,
            num_ops: 6,
            num_inputs: 4,
            multipliers: 1,
            alus: 1,
        });
        let config = SynthesisConfig::time_boxed(Duration::from_millis(300));
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let reference = reference::synthesize_reference(&input, &config).unwrap();
        let k = input.binding().num_modules();
        let design = synthesis::synthesize_bist(&input, k, &config).unwrap();
        validate_design(&design.datapath, &design.plan, &input, &lifetimes)
            .unwrap_or_else(|e| panic!("case {case} (dfg seed {seed}): {e}"));
        assert!(
            design.area.total() >= reference.area.total(),
            "case {case} (dfg seed {seed})"
        );
    }
}

/// The reducing presolve pipeline is optimum-preserving: on random small 0-1
/// models, solving the explicitly reduced model and lifting the solution
/// back must reproduce the brute-force optimum, for **all three** dual-bound
/// modes, and the lifted assignment must be feasible for the *original*
/// model (the round trip through `var_map` loses nothing).
#[test]
fn reduce_and_lift_preserve_the_brute_force_optimum() {
    let modes = [
        BoundMode::Propagation,
        BoundMode::LpRelaxation,
        BoundMode::Hybrid { lp_depth: 2 },
    ];
    for seed in 0..40u64 {
        let model = random_binary_model(seed.wrapping_mul(6151) + 3, 8, 6);
        let expected = brute_force(&model);
        let reduced = reduce(&model, &ReduceOptions::full());
        // Structural sanity of the maps: every original variable has a
        // disposition, and kept ones point into the reduced model.
        assert_eq!(reduced.var_map().len(), model.num_vars());
        assert_eq!(reduced.row_map().len(), model.num_constraints());
        for disposition in reduced.var_map() {
            if let VarDisposition::Kept(r) = disposition {
                assert!(*r < reduced.model.num_vars(), "seed {seed}");
            }
        }
        for mode in modes {
            let config = SolverConfig::exact().with_bound_mode(mode);
            let solution = solve_reduced(&model, &reduced, &config).unwrap();
            match expected {
                None => assert!(
                    !solution.is_feasible(),
                    "seed {seed}, mode {mode:?}: expected infeasible"
                ),
                Some(best) => {
                    assert!(
                        solution.is_optimal(),
                        "seed {seed}, mode {mode:?}: not optimal"
                    );
                    assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}, mode {mode:?}: lifted {} vs brute force {best}",
                        solution.objective(),
                    );
                    assert!(
                        model.is_feasible(solution.values(), 1e-6),
                        "seed {seed}, mode {mode:?}: lifted assignment infeasible"
                    );
                }
            }
        }
    }
}

/// Branch and bound agrees with exhaustive enumeration on random small 0-1
/// models for **all three** dual-bound modes — the propagation-only bound,
/// the LP-relaxation bound and the depth-limited hybrid. Every mode must be
/// an exact oracle; only their cost profiles may differ.
#[test]
fn bound_modes_agree_with_brute_force() {
    let modes = [
        BoundMode::Propagation,
        BoundMode::LpRelaxation,
        BoundMode::Hybrid { lp_depth: 2 },
    ];
    for seed in 0..40u64 {
        let model = random_binary_model(seed.wrapping_mul(7919) + 17, 8, 6);
        let expected = brute_force(&model);
        for mode in modes {
            let config = SolverConfig::exact().with_bound_mode(mode);
            let solution = model.solve(&config).unwrap();
            match expected {
                None => assert!(
                    !solution.is_feasible(),
                    "seed {seed}, mode {mode:?}: expected infeasible"
                ),
                Some(best) => {
                    assert!(
                        solution.is_optimal(),
                        "seed {seed}, mode {mode:?}: not optimal"
                    );
                    assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}, mode {mode:?}: solver {} vs brute force {best}",
                        solution.objective(),
                    );
                }
            }
        }
    }
}
