//! Property-based tests over randomly generated scheduled DFGs: the
//! invariants that must hold for *every* circuit, not just the six paper
//! benchmarks.

use std::time::Duration;

use advbist::baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::validate::validate_design;
use advbist::datapath::{CostModel, Datapath};
use advbist::dfg::allocate::left_edge;
use advbist::dfg::benchmarks::{random_dfg, RandomDfgConfig};
use advbist::dfg::lifetime::{InputTiming, LifetimeTable};
use proptest::prelude::*;

fn arbitrary_config() -> impl Strategy<Value = RandomDfgConfig> {
    (0u64..500, 4usize..10, 3usize..6, 1usize..3).prop_map(
        |(seed, num_ops, num_inputs, multipliers)| RandomDfgConfig {
            seed,
            num_ops,
            num_inputs,
            multipliers,
            alus: 1,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Left-edge allocation always hits the horizontal-crossing lower bound
    /// and never co-locates conflicting variables.
    #[test]
    fn left_edge_is_optimal_and_valid(config in arbitrary_config()) {
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        prop_assert_eq!(assignment.num_registers(), lifetimes.min_registers());
        prop_assert!(assignment.is_valid(&lifetimes));
    }

    /// Loading primary inputs early (FromStart) can only increase register
    /// pressure relative to just-in-time loading.
    #[test]
    fn input_timing_monotonicity(config in arbitrary_config()) {
        let input = random_dfg(&config);
        let jit = LifetimeTable::with_timing(&input, InputTiming::JustInTime).unwrap();
        let early = LifetimeTable::with_timing(&input, InputTiming::FromStart).unwrap();
        prop_assert!(early.min_registers() >= jit.min_registers());
    }

    /// Every heuristic baseline produces a design that passes the structural
    /// and BIST validators, for every random circuit and the maximal k.
    #[test]
    fn baselines_always_produce_valid_designs(config in arbitrary_config()) {
        let input = random_dfg(&config);
        let cost = CostModel::eight_bit();
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let k = input.binding().num_modules();
        for result in [
            synthesize_advan(&input, k, &cost),
            synthesize_ralloc(&input, k, &cost),
            synthesize_bits(&input, k, &cost),
        ] {
            let design = result.unwrap();
            prop_assert!(validate_design(&design.datapath, &design.plan, &input, &lifetimes).is_ok());
            prop_assert!(design.area.total() > 0);
        }
    }

    /// The data path derived from any valid register assignment implements
    /// every DFG edge (checked via its area being computable and the
    /// structural validator accepting it).
    #[test]
    fn datapath_construction_is_total(config in arbitrary_config()) {
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        let datapath = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
        prop_assert_eq!(datapath.num_registers(), lifetimes.min_registers());
        prop_assert!(
            advbist::datapath::validate::validate_structure(&datapath, &input, &lifetimes).is_ok()
        );
        let area = datapath.area(&CostModel::eight_bit());
        prop_assert!(area.total() >= 208 * datapath.num_registers() as u64);
    }
}

proptest! {
    // The ILP-backed properties are slower (they invoke the solver), so run
    // fewer cases with a tight per-solve budget.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The time-boxed ADVBIST flow always returns a *validated* design on
    /// random circuits, and its area is at least the reference area.
    #[test]
    fn advbist_designs_are_always_valid(seed in 0u64..200) {
        let input = random_dfg(&RandomDfgConfig {
            seed,
            num_ops: 6,
            num_inputs: 4,
            multipliers: 1,
            alus: 1,
        });
        let config = SynthesisConfig::time_boxed(Duration::from_millis(300));
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let reference = reference::synthesize_reference(&input, &config).unwrap();
        let k = input.binding().num_modules();
        let design = synthesis::synthesize_bist(&input, k, &config).unwrap();
        prop_assert!(validate_design(&design.datapath, &design.plan, &input, &lifetimes).is_ok());
        prop_assert!(design.area.total() >= reference.area.total());
    }
}
