//! Property-based tests over randomly generated inputs: the invariants that
//! must hold for *every* circuit and every small 0-1 model, not just the six
//! paper benchmarks. The cases are driven by a deterministic in-repo PRNG
//! (see `common`), so every failure message names the seed that reproduces
//! it.

mod common;

use std::time::Duration;

use advbist::baselines::{synthesize_advan, synthesize_bits, synthesize_ralloc};
use advbist::core::{reference, synthesis, SynthesisConfig};
use advbist::datapath::validate::validate_design;
use advbist::datapath::{CostModel, Datapath};
use advbist::dfg::allocate::left_edge;
use advbist::dfg::benchmarks::{random_dfg, RandomDfgConfig};
use advbist::dfg::lifetime::{InputTiming, LifetimeTable};
use advbist::ilp::propagate::Domains;
use advbist::ilp::reduce::{reduce, solve_reduced, ReduceOptions, VarDisposition};
use advbist::ilp::simplex::{resolve_with_basis, solve_lp, solve_lp_basis, LpStatus};
use advbist::ilp::sparse::SparseModel;
use advbist::ilp::{BoundMode, BranchRule, CmpOp, Model, SolverConfig};
use common::{brute_force, random_binary_model, Rng};

/// Draws a random DFG configuration from a seeded PRNG, mirroring the
/// proptest strategy the seed repository used.
fn arbitrary_config(rng: &mut Rng) -> RandomDfgConfig {
    RandomDfgConfig {
        seed: rng.range(0, 500),
        num_ops: rng.range(4, 10) as usize,
        num_inputs: rng.range(3, 6) as usize,
        multipliers: rng.range(1, 3) as usize,
        alus: 1,
    }
}

/// Left-edge allocation always hits the horizontal-crossing lower bound and
/// never co-locates conflicting variables.
#[test]
fn left_edge_is_optimal_and_valid() {
    let mut rng = Rng::new(0x1e01);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        assert_eq!(
            assignment.num_registers(),
            lifetimes.min_registers(),
            "case {case}, config {config:?}"
        );
        assert!(
            assignment.is_valid(&lifetimes),
            "case {case}, config {config:?}"
        );
    }
}

/// Loading primary inputs early (FromStart) can only increase register
/// pressure relative to just-in-time loading.
#[test]
fn input_timing_monotonicity() {
    let mut rng = Rng::new(0x71b3);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let jit = LifetimeTable::with_timing(&input, InputTiming::JustInTime).unwrap();
        let early = LifetimeTable::with_timing(&input, InputTiming::FromStart).unwrap();
        assert!(
            early.min_registers() >= jit.min_registers(),
            "case {case}, config {config:?}"
        );
    }
}

/// Every heuristic baseline produces a design that passes the structural and
/// BIST validators, for every random circuit and the maximal k.
#[test]
fn baselines_always_produce_valid_designs() {
    let mut rng = Rng::new(0xba5e);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let cost = CostModel::eight_bit();
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let k = input.binding().num_modules();
        for (method, result) in [
            ("ADVAN", synthesize_advan(&input, k, &cost)),
            ("RALLOC", synthesize_ralloc(&input, k, &cost)),
            ("BITS", synthesize_bits(&input, k, &cost)),
        ] {
            let design = result
                .unwrap_or_else(|e| panic!("{method} failed on case {case} ({config:?}): {e}"));
            validate_design(&design.datapath, &design.plan, &input, &lifetimes)
                .unwrap_or_else(|e| panic!("{method} invalid on case {case} ({config:?}): {e}"));
            assert!(design.area.total() > 0, "{method}, case {case}");
        }
    }
}

/// The data path derived from any valid register assignment implements every
/// DFG edge (checked via its area being computable and the structural
/// validator accepting it).
#[test]
fn datapath_construction_is_total() {
    let mut rng = Rng::new(0xd47a);
    for case in 0..24 {
        let config = arbitrary_config(&mut rng);
        let input = random_dfg(&config);
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let assignment = left_edge(&lifetimes);
        let datapath = Datapath::from_register_assignment(&input, &assignment, 8).unwrap();
        assert_eq!(
            datapath.num_registers(),
            lifetimes.min_registers(),
            "case {case}, config {config:?}"
        );
        advbist::datapath::validate::validate_structure(&datapath, &input, &lifetimes)
            .unwrap_or_else(|e| panic!("structure invalid on case {case} ({config:?}): {e}"));
        let area = datapath.area(&CostModel::eight_bit());
        assert!(area.total() >= 208 * datapath.num_registers() as u64);
    }
}

/// The time-boxed ADVBIST flow always returns a *validated* design on random
/// circuits, and its area is at least the reference area.
#[test]
fn advbist_designs_are_always_valid() {
    let mut rng = Rng::new(0xadb1);
    for case in 0..6 {
        let seed = rng.range(0, 200);
        let input = random_dfg(&RandomDfgConfig {
            seed,
            num_ops: 6,
            num_inputs: 4,
            multipliers: 1,
            alus: 1,
        });
        let config = SynthesisConfig::time_boxed(Duration::from_millis(300));
        let lifetimes = LifetimeTable::new(&input).unwrap();
        let reference = reference::synthesize_reference(&input, &config).unwrap();
        let k = input.binding().num_modules();
        let design = synthesis::synthesize_bist(&input, k, &config).unwrap();
        validate_design(&design.datapath, &design.plan, &input, &lifetimes)
            .unwrap_or_else(|e| panic!("case {case} (dfg seed {seed}): {e}"));
        assert!(
            design.area.total() >= reference.area.total(),
            "case {case} (dfg seed {seed})"
        );
    }
}

/// The reducing presolve pipeline is optimum-preserving: on random small 0-1
/// models, solving the explicitly reduced model and lifting the solution
/// back must reproduce the brute-force optimum, for **all three** dual-bound
/// modes, and the lifted assignment must be feasible for the *original*
/// model (the round trip through `var_map` loses nothing).
#[test]
fn reduce_and_lift_preserve_the_brute_force_optimum() {
    let modes = [
        BoundMode::Propagation,
        BoundMode::LpRelaxation,
        BoundMode::Hybrid { lp_depth: 2 },
    ];
    for seed in 0..40u64 {
        let model = random_binary_model(seed.wrapping_mul(6151) + 3, 8, 6);
        let expected = brute_force(&model);
        let reduced = reduce(&model, &ReduceOptions::full());
        // Structural sanity of the maps: every original variable has a
        // disposition, and kept ones point into the reduced model.
        assert_eq!(reduced.var_map().len(), model.num_vars());
        assert_eq!(reduced.row_map().len(), model.num_constraints());
        for disposition in reduced.var_map() {
            if let VarDisposition::Kept(r) = disposition {
                assert!(*r < reduced.model.num_vars(), "seed {seed}");
            }
        }
        for mode in modes {
            let config = SolverConfig::exact().with_bound_mode(mode);
            let solution = solve_reduced(&model, &reduced, &config).unwrap();
            match expected {
                None => assert!(
                    !solution.is_feasible(),
                    "seed {seed}, mode {mode:?}: expected infeasible"
                ),
                Some(best) => {
                    assert!(
                        solution.is_optimal(),
                        "seed {seed}, mode {mode:?}: not optimal"
                    );
                    assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}, mode {mode:?}: lifted {} vs brute force {best}",
                        solution.objective(),
                    );
                    assert!(
                        model.is_feasible(solution.values(), 1e-6),
                        "seed {seed}, mode {mode:?}: lifted assignment infeasible"
                    );
                }
            }
        }
    }
}

/// Builds the LP relaxation inputs of a model exactly the way the solver
/// does.
fn relaxation(model: &Model) -> (SparseModel, Vec<f64>, f64, Domains) {
    let objective: Vec<f64> = model.vars().iter().map(|v| v.objective).collect();
    let constant = model.objective().offset();
    (
        SparseModel::from_model(model),
        objective,
        constant,
        Domains::from_model(model),
    )
}

/// Whether `values` satisfies every row of `matrix` and the box of
/// `domains` (LP feasibility — integrality is deliberately ignored).
fn lp_feasible(matrix: &SparseModel, domains: &Domains, values: &[f64]) -> bool {
    let in_box = (0..domains.len())
        .all(|j| values[j] >= domains.lower(j) - 1e-6 && values[j] <= domains.upper(j) + 1e-6);
    in_box
        && matrix.rows().all(|row| {
            let activity: f64 = row.terms().map(|(j, a)| a * values[j]).sum();
            match row.op {
                CmpOp::Le => activity <= row.rhs + 1e-6,
                CmpOp::Ge => activity >= row.rhs - 1e-6,
                CmpOp::Eq => (activity - row.rhs).abs() <= 1e-6,
            }
        })
}

/// Differential harness of the revised-simplex kernel: on a PRNG corpus of
/// ≥200 *reduced* models (the models branch-and-bound actually solves), the
/// revised kernel — cold two-phase primal *and* warm dual-simplex re-solves
/// along random bound-tightening descents — must agree with the **legacy
/// dense tableau** oracle (`common::reference_lp`, the pre-revised kernel
/// preserved verbatim as a second opinion): same status, objectives within
/// 1e-6 and an LP-feasible optimal point, at the root and at every step of
/// the descent.
#[test]
fn revised_kernel_agrees_with_legacy_dense_tableau_on_reduced_models() {
    use common::reference_lp::{solve_dense, RefStatus};
    let agree = |status: LpStatus, reference: RefStatus| -> bool {
        matches!(
            (status, reference),
            (LpStatus::Optimal, RefStatus::Optimal)
                | (LpStatus::Infeasible, RefStatus::Infeasible)
                | (LpStatus::Unbounded, RefStatus::Unbounded)
        )
    };
    let mut rng = Rng::new(0xd0a1);
    let mut corpus = 0usize;
    let mut warm_resolves = 0usize;
    let mut seed = 0u64;
    while corpus < 220 {
        seed += 1;
        let model = random_binary_model(seed.wrapping_mul(9176) + 5, 8, 6);
        let reduced = reduce(&model, &ReduceOptions::full());
        if reduced.report.infeasible || reduced.model.num_vars() == 0 {
            continue;
        }
        corpus += 1;
        let (matrix, objective, constant, root_domains) = relaxation(&reduced.model);
        let legacy_root = solve_dense(&matrix, &objective, constant, &root_domains, 50_000);
        let (warm_root, basis) =
            solve_lp_basis(&matrix, &objective, constant, &root_domains, 50_000);
        let cold_root = solve_lp(&matrix, &objective, constant, &root_domains, 50_000);
        assert_eq!(warm_root.status, cold_root.status, "seed {seed} (root)");
        assert!(
            agree(warm_root.status, legacy_root.status),
            "seed {seed} (root): revised {:?} vs legacy {:?}",
            warm_root.status,
            legacy_root.status
        );
        if warm_root.status != LpStatus::Optimal {
            continue;
        }
        assert!(
            (warm_root.objective - legacy_root.objective).abs() < 1e-6,
            "seed {seed} (root): revised {} vs legacy {}",
            warm_root.objective,
            legacy_root.objective
        );
        assert!(
            (warm_root.objective - cold_root.objective).abs() < 1e-6,
            "seed {seed} (root): basis path {} vs plain cold {}",
            warm_root.objective,
            cold_root.objective
        );
        assert!(
            lp_feasible(&matrix, &root_domains, &warm_root.values),
            "seed {seed} (root): revised point infeasible"
        );
        let mut basis = basis.expect("warm-capable solve always returns a basis now");
        let mut domains = root_domains;
        // A random branch-and-bound descent: fix one free variable at a
        // time and re-solve warm from the previous basis, checking every
        // step against both the legacy oracle and a revised cold solve.
        for step in 0..4 {
            let free: Vec<usize> = (0..domains.len())
                .filter(|&j| !domains.is_fixed(j))
                .collect();
            if free.is_empty() {
                break;
            }
            let j = free[rng.range(0, free.len() as u64) as usize];
            let value = f64::from(u8::from(rng.next_u64().is_multiple_of(2)));
            assert!(domains.fix(j, value), "seed {seed} step {step}");
            let legacy = solve_dense(&matrix, &objective, constant, &domains, 50_000);
            let cold = solve_lp(&matrix, &objective, constant, &domains, 50_000);
            let (warm, next) =
                resolve_with_basis(&matrix, &objective, constant, &basis, &domains, 50_000)
                    .unwrap_or_else(|| panic!("seed {seed} step {step}: basis incompatible"));
            warm_resolves += 1;
            assert_eq!(warm.status, cold.status, "seed {seed} step {step}");
            assert!(
                agree(warm.status, legacy.status),
                "seed {seed} step {step}: revised {:?} vs legacy {:?}",
                warm.status,
                legacy.status
            );
            if warm.status != LpStatus::Optimal {
                break;
            }
            assert!(
                (warm.objective - legacy.objective).abs() < 1e-6,
                "seed {seed} step {step}: warm {} vs legacy {}",
                warm.objective,
                legacy.objective
            );
            assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "seed {seed} step {step}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
            assert!(
                lp_feasible(&matrix, &domains, &warm.values),
                "seed {seed} step {step}: warm point infeasible"
            );
            assert!(
                lp_feasible(&matrix, &domains, &cold.values),
                "seed {seed} step {step}: cold point infeasible"
            );
            basis = next.expect("optimal dual re-solve returns a basis");
        }
    }
    assert!(
        warm_resolves >= 200,
        "only {warm_resolves} warm re-solves exercised"
    );
}

/// Pricing is a performance knob, never a correctness one: over the same
/// PRNG corpus of reduced models as the legacy-oracle differential, devex
/// and Dantzig pricing must agree on status and objective — cold at the
/// root *and* along warm dual-simplex descents re-solved from each rule's
/// own basis chain.
#[test]
fn devex_and_dantzig_agree_on_reduced_models() {
    use advbist::ilp::simplex::{resolve_with_basis_priced, solve_lp_basis_priced, Pricing};
    let mut rng = Rng::new(0xdeef);
    let mut corpus = 0usize;
    let mut warm_pairs = 0usize;
    let mut seed = 0u64;
    while corpus < 220 {
        seed += 1;
        let model = random_binary_model(seed.wrapping_mul(9176) + 5, 8, 6);
        let reduced = reduce(&model, &ReduceOptions::full());
        if reduced.report.infeasible || reduced.model.num_vars() == 0 {
            continue;
        }
        corpus += 1;
        let (matrix, objective, constant, root) = relaxation(&reduced.model);
        let (devex, devex_basis) =
            solve_lp_basis_priced(&matrix, &objective, constant, &root, 50_000, Pricing::Devex);
        let (dantzig, dantzig_basis) = solve_lp_basis_priced(
            &matrix,
            &objective,
            constant,
            &root,
            50_000,
            Pricing::Dantzig,
        );
        assert_eq!(devex.status, dantzig.status, "seed {seed} (root)");
        if devex.status != LpStatus::Optimal {
            continue;
        }
        assert!(
            (devex.objective - dantzig.objective).abs() < 1e-6,
            "seed {seed} (root): devex {} vs dantzig {}",
            devex.objective,
            dantzig.objective
        );
        assert!(
            lp_feasible(&matrix, &root, &devex.values),
            "seed {seed} (root): devex point infeasible"
        );
        let mut bases = (
            devex_basis.expect("devex basis"),
            dantzig_basis.expect("dantzig basis"),
        );
        let mut domains = root;
        // Descend by random fixings, each pricing rule warm-resolving from
        // its own basis chain; the objectives must stay in lockstep.
        for step in 0..4 {
            let free: Vec<usize> = (0..domains.len())
                .filter(|&j| !domains.is_fixed(j))
                .collect();
            if free.is_empty() {
                break;
            }
            let j = free[rng.range(0, free.len() as u64) as usize];
            let value = f64::from(u8::from(rng.next_u64().is_multiple_of(2)));
            assert!(domains.fix(j, value), "seed {seed} step {step}");
            let devex_warm = resolve_with_basis_priced(
                &matrix,
                &objective,
                constant,
                &bases.0,
                &domains,
                50_000,
                Pricing::Devex,
            );
            let dantzig_warm = resolve_with_basis_priced(
                &matrix,
                &objective,
                constant,
                &bases.1,
                &domains,
                50_000,
                Pricing::Dantzig,
            );
            let (Some((devex, next_devex)), Some((dantzig, next_dantzig))) =
                (devex_warm, dantzig_warm)
            else {
                panic!("seed {seed} step {step}: basis incompatible");
            };
            warm_pairs += 1;
            assert_eq!(devex.status, dantzig.status, "seed {seed} step {step}");
            if devex.status != LpStatus::Optimal {
                break;
            }
            assert!(
                (devex.objective - dantzig.objective).abs() < 1e-6,
                "seed {seed} step {step}: devex {} vs dantzig {}",
                devex.objective,
                dantzig.objective
            );
            bases = (
                next_devex.expect("optimal devex re-solve returns a basis"),
                next_dantzig.expect("optimal dantzig re-solve returns a basis"),
            );
        }
    }
    assert!(
        warm_pairs >= 200,
        "only {warm_pairs} warm pricing pairs exercised"
    );
}

/// Every branching rule is an exact oracle: on random small 0-1 models all
/// `BranchRule` variants reach the brute-force optimum under **all three**
/// dual-bound modes (pseudo-cost branching falls back gracefully where no
/// LP values exist).
#[test]
fn branch_rules_agree_with_brute_force_across_bound_modes() {
    let rules = [
        BranchRule::InputOrder,
        BranchRule::MostConstrained,
        BranchRule::MostFractional,
        BranchRule::PseudoCost,
    ];
    let modes = [
        BoundMode::Propagation,
        BoundMode::LpRelaxation,
        BoundMode::Hybrid { lp_depth: 2 },
    ];
    for seed in 0..25u64 {
        let model = random_binary_model(seed.wrapping_mul(4243) + 9, 8, 6);
        let expected = brute_force(&model);
        for rule in rules {
            for mode in modes {
                let config = SolverConfig::exact()
                    .with_bound_mode(mode)
                    .with_branching(rule);
                let solution = model.solve(&config).unwrap();
                match expected {
                    None => assert!(
                        !solution.is_feasible(),
                        "seed {seed}, rule {rule:?}, mode {mode:?}: expected infeasible"
                    ),
                    Some(best) => {
                        assert!(
                            solution.is_optimal(),
                            "seed {seed}, rule {rule:?}, mode {mode:?}: not optimal"
                        );
                        assert!(
                            (solution.objective() - best).abs() < 1e-6,
                            "seed {seed}, rule {rule:?}, mode {mode:?}: solver {} vs brute force {best}",
                            solution.objective(),
                        );
                    }
                }
            }
        }
    }
}

/// All branching rules reach the same proven optimum on the exactly
/// solvable circuit (figure1), for every session count — the circuit-level
/// counterpart of the brute-force oracle above.
#[test]
fn branch_rules_agree_on_the_exactly_solvable_circuit() {
    use advbist::core::synthesis::synthesize_bist;
    use advbist::dfg::benchmarks;
    let input = benchmarks::figure1();
    let rules = [
        BranchRule::InputOrder,
        BranchRule::MostConstrained,
        BranchRule::MostFractional,
        BranchRule::PseudoCost,
    ];
    for k in 1..=input.binding().num_modules() {
        let mut reference: Option<f64> = None;
        for rule in rules {
            let mut config = SynthesisConfig::exact();
            config.solver.branching = rule;
            let design = synthesize_bist(&input, k, &config).unwrap();
            assert!(design.optimal, "k={k}, rule {rule:?}");
            match reference {
                None => reference = Some(design.objective),
                Some(expected) => assert!(
                    (design.objective - expected).abs() < 1e-6,
                    "k={k}, rule {rule:?}: objective {} vs {}",
                    design.objective,
                    expected
                ),
            }
        }
    }
}

/// Branch and bound agrees with exhaustive enumeration on random small 0-1
/// models for **all three** dual-bound modes — the propagation-only bound,
/// the LP-relaxation bound and the depth-limited hybrid. Every mode must be
/// an exact oracle; only their cost profiles may differ.
#[test]
fn bound_modes_agree_with_brute_force() {
    let modes = [
        BoundMode::Propagation,
        BoundMode::LpRelaxation,
        BoundMode::Hybrid { lp_depth: 2 },
    ];
    for seed in 0..40u64 {
        let model = random_binary_model(seed.wrapping_mul(7919) + 17, 8, 6);
        let expected = brute_force(&model);
        for mode in modes {
            let config = SolverConfig::exact().with_bound_mode(mode);
            let solution = model.solve(&config).unwrap();
            match expected {
                None => assert!(
                    !solution.is_feasible(),
                    "seed {seed}, mode {mode:?}: expected infeasible"
                ),
                Some(best) => {
                    assert!(
                        solution.is_optimal(),
                        "seed {seed}, mode {mode:?}: not optimal"
                    );
                    assert!(
                        (solution.objective() - best).abs() < 1e-6,
                        "seed {seed}, mode {mode:?}: solver {} vs brute force {best}",
                        solution.objective(),
                    );
                }
            }
        }
    }
}
